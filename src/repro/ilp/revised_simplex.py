"""Bounded-variable revised simplex with a dual mode for warm re-solves.

This is the second-generation LP kernel behind the built-in
branch-and-bound solver.  Compared with the dense two-phase tableau of
:mod:`repro.ilp.simplex` it changes three things that matter for the
mapping workloads:

* **Bounds are native.**  Variables live in ``[lb, ub]`` inside the
  algorithm (nonbasic variables sit at one of their bounds), so finite
  upper bounds no longer inflate the row count — a 0/1 model with ``n``
  variables loses ``n`` constraint rows compared with the tableau, and
  every pivot works on the smaller system.
* **The basis is a factorization, not a matrix.**  All basis solves go
  through FTRAN/BTRAN against a factorization object plus a product-form
  *eta file* of post-factorization pivots (:mod:`repro.ilp.lu`).  Small
  bases keep the dense explicit-inverse representation (one NumPy
  mat-vec beats any Python bookkeeping at ``m`` in the tens); larger
  bases switch to a Markowitz-pivot sparse LU whose solves touch only
  the structural non-zeros.  Refactorization is adaptive — triggered by
  eta-file length, eta fill-in, or a sampled residual breach — and the
  (basis, nonbasic-status) pair is exported as a :class:`BasisState`
  that callers can hand to a later solve.
* **A dual simplex mode restores feasibility after bound changes.**
  Branch-and-bound children differ from their parent by a few tightened
  bounds: the parent's optimal basis stays *dual* feasible, so the child
  re-solve starts from it and performs a handful of dual pivots instead
  of a full phase-1 + phase-2 run.  The same applies to the pipeline's
  Section 4.1 retries (one more variable fixed to zero) and to
  warm-chained explore sweeps.

Computational form
------------------
The :class:`~repro.ilp.standard_form.StandardForm` rows are lifted into
equalities by one slack column per row::

    A_ub x + s_ub = b_ub     0 <= s_ub < inf
    A_eq x + s_eq = b_eq     s_eq = 0

so ``W = [A | I]`` and a basis is any nonsingular m-column subset of
``W``.  ``W`` itself is never materialised: the engine keeps the
structural block as a CSC view of the standard form's CSR matrices
(slack columns are implicit unit vectors), and pricing, ratio tests and
basis solves all work off that view.  Cold solves start from the
all-slack basis and run a primal phase 1 (minimising the total bound
violation of the basic variables with short-step blocking) followed by
a primal phase 2.

Pricing is selectable (``RevisedOptions.pricing``): classic full
Dantzig scans, *partial pricing* that cycles a candidate-list window
over the column blocks and prices only one window per pivot, or a
primal *Devex* mode using reference-framework weights.  The dual loop
has its own optional Devex row weighting (``dual_pricing``).  Every
rule shares the Bland's-rule anti-cycling fallback after a stall, and
post-optimality canonicalization always uses the full Dantzig scan so
the returned vertex is identical across pricing rules and solve paths.

Warm solves (:meth:`RevisedSimplex.solve` with a ``basis``) refactorize
the supplied basis, repair dual feasibility by bound flips where
possible, and run the bounded-variable dual simplex; any numerical
trouble (singular basis, unrepairable dual infeasibility, stalling)
falls back to the cold primal path rather than failing the solve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from .lu import DenseFactors, factorize_markowitz
from .solution import ERROR, INFEASIBLE, OPTIMAL, UNBOUNDED, LpResult
from .standard_form import StandardForm

__all__ = ["BasisState", "RevisedOptions", "RevisedSimplex", "solve_lp_revised"]

# Nonbasic / basic variable statuses.
BASIC = 0
AT_LOWER = 1
AT_UPPER = 2
FREE = 3  # nonbasic at value zero (no finite bound to rest on)

#: primal feasibility tolerance (solution values, not pivot eligibility)
_PTOL = 1e-7
#: dual feasibility tolerance used when accepting a warm basis
_DTOL = 1e-7

_FACTORIZATIONS = ("auto", "dense", "lu")
_PRICINGS = ("dantzig", "partial", "devex")
_DUAL_PRICINGS = ("violation", "devex")


@dataclass
class RevisedOptions:
    """Tuning knobs for the revised simplex kernel."""

    max_iterations: int = 20000
    #: switch from the pricing rule to Bland's anti-cycling rule after
    #: this many iterations without objective (or infeasibility)
    #: improvement.
    stall_iterations: int = 200
    tolerance: float = 1e-9
    #: hard cap on pivots (dense mode) / update etas (LU mode) between
    #: refactorizations — the numerical-drift backstop the
    #: refactorization-drift tests pin.  Adaptive triggers (fill-in,
    #: residual breach) may refactorize sooner; this never lets the eta
    #: file grow past the cap.
    refactor_interval: int = 64
    #: after optimality, pivot along the optimal face (zero-reduced-cost
    #: columns only — provably objective-preserving) to the vertex
    #: minimising a fixed generic secondary objective.  This makes the
    #: returned vertex independent of the solve path, so a dual warm
    #: re-solve and a cold solve of the same node give byte-identical
    #: solutions — the property the warm-vs-cold fingerprint tests pin.
    canonicalize: bool = True
    #: basis representation: ``"dense"`` keeps an explicit ``B⁻¹``
    #: (fastest for tiny bases), ``"lu"`` a Markowitz sparse LU with a
    #: product-form eta file (scales with non-zeros, not ``m²``), and
    #: ``"auto"`` picks by row count against ``lu_threshold``.
    factorization: str = "auto"
    #: ``auto`` switches from dense to LU at this many rows — the
    #: measured wall-clock crossover for sparse standard forms (below
    #: it, one vectorised dense mat-vec still beats sparse
    #: substitution; above it the O(m²) updates dominate).
    lu_threshold: int = 500
    #: primal entering-column rule: ``"dantzig"`` (full most-negative
    #: scan), ``"partial"`` (candidate-list cycling over column blocks),
    #: or ``"devex"`` (reference-framework weights).  Anti-cycling and
    #: canonicalization behave identically under every rule.
    pricing: str = "dantzig"
    #: partial-pricing window size; ``0`` sizes it automatically
    #: (``max(32, total/8)``).
    pricing_block: int = 0
    #: dual leaving-row rule for warm re-solves: ``"violation"``
    #: (largest bound violation) or ``"devex"`` (violation² over
    #: steepest-edge reference weights).
    dual_pricing: str = "violation"
    #: adaptive trigger — refactorize when the eta file's non-zeros
    #: exceed this multiple of the base factorization's fill (LU mode).
    refactor_fill_factor: float = 8.0
    #: adaptive trigger — probe ``‖B·x − v‖`` on a sampled right-hand
    #: side every this many etas and refactorize on a breach (LU mode;
    #: ``0`` disables the probe).
    residual_interval: int = 16
    #: residual magnitude that counts as a breach.
    residual_tol: float = 1e-6
    #: Markowitz threshold-pivoting stability factor (LU mode).
    markowitz_tol: float = 0.01


@dataclass
class BasisState:
    """A reusable snapshot of one solve's optimal basis.

    ``basis`` holds the basic column index per row of the computational
    form ``[structural | slacks]``; ``status`` holds the
    :data:`AT_LOWER` / :data:`AT_UPPER` / :data:`FREE` resting place of
    every nonbasic column (:data:`BASIC` for basic ones).  The state is
    only meaningful for a form with the same row/column counts — the
    kernel re-validates and silently cold-starts on a mismatch.
    """

    basis: np.ndarray
    status: np.ndarray

    def matches(self, num_rows: int, num_cols: int) -> bool:
        return (
            self.basis.shape == (num_rows,)
            and self.status.shape == (num_cols,)
        )

    def copy(self) -> "BasisState":
        return BasisState(self.basis.copy(), self.status.copy())

    # ------------------------------------------------------------ round trip
    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form (crosses process boundaries with contexts)."""
        return {
            "kind": "basis_state",
            "basis": self.basis.tolist(),
            "status": self.status.tolist(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BasisState":
        return cls(
            basis=np.asarray(data.get("basis") or [], dtype=np.int64),
            status=np.asarray(data.get("status") or [], dtype=np.int8),
        )


class RevisedSimplex:
    """Revised simplex engine bound to one constraint matrix.

    The engine is constructed from a :class:`StandardForm` and assembles
    a column-compressed view of the structural matrix once; every
    :meth:`solve` call then supplies (possibly different) variable
    bounds, which is exactly the branch-and-bound node pattern — the
    matrices never change between nodes, only the bound vectors do.
    :meth:`matches` lets callers reuse one engine across all node forms
    created by :meth:`StandardForm.with_bounds`.
    """

    def __init__(self, form: StandardForm, options: Optional[RevisedOptions] = None) -> None:
        self.options = options or RevisedOptions()
        if self.options.factorization not in _FACTORIZATIONS:
            raise ValueError(
                f"unknown factorization {self.options.factorization!r} "
                f"(expected one of {_FACTORIZATIONS})"
            )
        if self.options.pricing not in _PRICINGS:
            raise ValueError(
                f"unknown pricing rule {self.options.pricing!r} "
                f"(expected one of {_PRICINGS})"
            )
        if self.options.dual_pricing not in _DUAL_PRICINGS:
            raise ValueError(
                f"unknown dual pricing rule {self.options.dual_pricing!r} "
                f"(expected one of {_DUAL_PRICINGS})"
            )
        self._A_ub_sparse = form.A_ub_sparse
        self._A_eq_sparse = form.A_eq_sparse
        self._c_structural = form.c
        self.n = form.num_variables
        self.m_ub = form.num_ub_rows
        self.m_eq = form.num_eq_rows
        self.m = self.m_ub + self.m_eq
        self.total = self.n + self.m
        # CSC view of the structural block [A_ub; A_eq] — eq rows offset
        # below the ub rows.  Slack columns are implicit unit vectors, so
        # W = [A | I] is never materialised.
        self._build_csc(form)
        self.b = np.concatenate([form.b_ub, form.b_eq]) if self.m else np.zeros(0)
        c = np.zeros(self.total)
        c[: self.n] = form.c
        self.c = c
        # Fixed generic secondary objective for vertex canonicalization:
        # strictly positive, strictly decreasing, no two subset sums
        # likely to tie on a face edge.
        self._secondary = 1.0 / (np.arange(self.total, dtype=np.float64) + 2.0)
        # Dense B⁻¹ below the LU threshold, sparse LU above it.
        if self.options.factorization == "auto":
            self.mode = "lu" if self.m >= self.options.lu_threshold else "dense"
        else:
            self.mode = self.options.factorization
        # Deterministic ±1 sampled right-hand side for the residual probe.
        self._probe = np.where(np.arange(self.m) % 2 == 0, 1.0, -1.0)
        # ---- cumulative counters exposed for stats plumbing and tests
        self.refactorizations = 0
        self.refactor_triggers: Dict[str, int] = {}
        self.bland_switches = 0
        self.warm_attempts = 0
        self.warm_accepted = 0
        self.warm_fallbacks = 0
        self.etas_created = 0
        self.etas_applied = 0
        self.ftran_nnz = 0
        self.btran_nnz = 0
        # ---- per-solve state (set up by _cold_start / _warm_start)
        self.basis = np.zeros(0, dtype=np.int64)
        self.status = np.zeros(0, dtype=np.int8)
        self.x_basic = np.zeros(0)
        self.lower = np.zeros(0)
        self.upper = np.zeros(0)
        self._factor = None
        self._etas: list = []
        self._eta_nnz = 0
        self._pivots_since_refactor = 0
        self._refactors_this_solve = 0
        self._solve_triggers: Dict[str, int] = {}
        self._solve_etas_applied = 0
        self._solve_ftran_nnz = 0
        self._solve_btran_nnz = 0
        self._partial_cursor = 0
        self._devex_w: Optional[np.ndarray] = None
        self._dual_w: Optional[np.ndarray] = None

    def _build_csc(self, form: StandardForm) -> None:
        ub, eq = form.A_ub_sparse, form.A_eq_sparse
        parts = []
        if ub.nnz:
            parts.append((ub.rows_of_nonzeros(), ub.indices, ub.data))
        if eq.nnz:
            parts.append((eq.rows_of_nonzeros() + self.m_ub, eq.indices, eq.data))
        if parts:
            rows = np.concatenate([p[0] for p in parts])
            cols = np.concatenate([p[1] for p in parts])
            vals = np.concatenate([p[2] for p in parts])
            order = np.lexsort((rows, cols))
            self._csc_rows = rows[order]
            self._csc_cols = cols[order]
            self._csc_vals = vals[order]
            counts = np.bincount(cols, minlength=self.n)
        else:
            self._csc_rows = np.zeros(0, dtype=np.int64)
            self._csc_cols = np.zeros(0, dtype=np.int64)
            self._csc_vals = np.zeros(0)
            counts = np.zeros(self.n, dtype=np.int64)
        self._csc_ptr = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64)]
        )
        # Slack columns as ready-made (rows, vals) pairs.
        one = np.ones(1)
        self._slack_columns = [
            (np.array([i], dtype=np.int64), one) for i in range(self.m)
        ]

    # ------------------------------------------------------------------ reuse
    def matches(self, form: StandardForm) -> bool:
        """True when ``form`` shares this engine's matrices (bounds may differ)."""
        return (
            form.A_ub_sparse is self._A_ub_sparse
            and form.A_eq_sparse is self._A_eq_sparse
            and form.c is self._c_structural
        )

    # --------------------------------------------------------------- columns
    def _column(self, j: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(rows, values)`` of computational column ``j`` — O(nnz(column))."""
        if j >= self.n:
            return self._slack_columns[j - self.n]
        lo, hi = int(self._csc_ptr[j]), int(self._csc_ptr[j + 1])
        return self._csc_rows[lo:hi], self._csc_vals[lo:hi]

    def _w_matvec(self, values: np.ndarray) -> np.ndarray:
        """``W @ values`` off the CSC view, without materialising ``W``."""
        out = np.zeros(self.m)
        if self._csc_vals.size:
            out += np.bincount(
                self._csc_rows,
                weights=self._csc_vals * values[self._csc_cols],
                minlength=self.m,
            )
        if self.m:
            out += values[self.n :]
        return out

    def _pi_row(self, rho: np.ndarray) -> np.ndarray:
        """``rhoᵀ W`` over every column (a full row of ``B⁻¹W``)."""
        out = np.empty(self.total)
        if self._csc_vals.size:
            out[: self.n] = np.bincount(
                self._csc_cols,
                weights=self._csc_vals * rho[self._csc_rows],
                minlength=self.n,
            )
        else:
            out[: self.n] = 0.0
        out[self.n :] = rho
        return out

    def _reduced_costs(self, costs: np.ndarray, y: np.ndarray) -> np.ndarray:
        """``costs − yᵀW`` for every column, vectorised off the CSC view."""
        d = costs.copy()
        if self._csc_vals.size:
            d[: self.n] -= np.bincount(
                self._csc_cols,
                weights=self._csc_vals * y[self._csc_rows],
                minlength=self.n,
            )
        if self.m:
            d[self.n :] -= y
        return d

    def _reduced_costs_range(
        self, costs: np.ndarray, y: np.ndarray, lo: int, hi: int
    ) -> np.ndarray:
        """``costs − yᵀW`` restricted to columns ``[lo, hi)`` (partial pricing)."""
        d = costs[lo:hi].copy()
        n = self.n
        if lo < n:
            chi = min(hi, n)
            p0, p1 = int(self._csc_ptr[lo]), int(self._csc_ptr[chi])
            if p1 > p0:
                d[: chi - lo] -= np.bincount(
                    self._csc_cols[p0:p1] - lo,
                    weights=self._csc_vals[p0:p1] * y[self._csc_rows[p0:p1]],
                    minlength=chi - lo,
                )
        if hi > n:
            slo = max(lo, n)
            d[slo - lo :] -= y[slo - n : hi - n]
        return d

    # ---------------------------------------------------------- FTRAN / BTRAN
    def _ftran(self, rhs: np.ndarray, count: bool = True) -> np.ndarray:
        """Solve ``B x = rhs`` through the factorization plus the eta file."""
        x = self._factor.ftran(rhs)
        etas = self._etas
        if etas:
            for r, piv, rows, vals in etas:
                xr = x[r]
                if xr != 0.0:
                    xr /= piv
                    x[r] = xr
                    if rows.size:
                        x[rows] -= vals * xr
            if count:
                applied = len(etas)
                self.etas_applied += applied
                self._solve_etas_applied += applied
        if count:
            nnz = int(np.count_nonzero(x))
            self.ftran_nnz += nnz
            self._solve_ftran_nnz += nnz
        return x

    def _btran(self, cb: np.ndarray, count: bool = True) -> np.ndarray:
        """Solve ``Bᵀ y = cb`` through the eta file plus the factorization."""
        etas = self._etas
        if etas:
            v = np.array(cb, dtype=np.float64, copy=True)
            for r, piv, rows, vals in reversed(etas):
                vr = v[r]
                if rows.size:
                    vr -= float(vals @ v[rows])
                v[r] = vr / piv
            if count:
                applied = len(etas)
                self.etas_applied += applied
                self._solve_etas_applied += applied
        else:
            v = cb
        y = self._factor.btran(v)
        if count:
            nnz = int(np.count_nonzero(y))
            self.btran_nnz += nnz
            self._solve_btran_nnz += nnz
        return y

    def _btran_unit(self, row: int) -> np.ndarray:
        """Row ``row`` of ``B⁻¹`` (a BTRAN of the unit vector)."""
        if not self._etas and self._factor.kind == "dense":
            rho = self._factor.binv[row, :].copy()
            nnz = int(np.count_nonzero(rho))
            self.btran_nnz += nnz
            self._solve_btran_nnz += nnz
            return rho
        e = np.zeros(self.m)
        e[row] = 1.0
        return self._btran(e)

    def _ftran_column(self, j: int) -> np.ndarray:
        """``B⁻¹ W[:, j]`` — the entering column in basis coordinates."""
        rows, vals = self._column(j)
        rhs = np.zeros(self.m)
        rhs[rows] = vals
        return self._ftran(rhs)

    def _basis_matvec(self, x_pos: np.ndarray) -> np.ndarray:
        """``B @ x_pos`` accumulated column-by-column — O(nnz(B))."""
        out = np.zeros(self.m)
        for k in range(self.m):
            xv = x_pos[k]
            if xv == 0.0:
                continue
            rows, vals = self._column(int(self.basis[k]))
            out[rows] += vals * xv
        return out

    # ------------------------------------------------------------- diagnostics
    def factor_residual(self) -> float:
        """``‖B·x − v‖_max`` for a sampled FTRAN solve (drift probe).

        The probe right-hand side is a fixed ±1 pattern, the solve goes
        through the current factorization *and* eta file, and the
        product ``B·x`` is accumulated column-sparsely — O(nnz) total,
        never a dense rebuild.
        """
        if self.m == 0 or self.basis.shape[0] != self.m or self._factor is None:
            return 0.0
        x = self._ftran(self._probe, count=False)
        residual = self._basis_matvec(x)
        residual -= self._probe
        return float(np.max(np.abs(residual)))

    # ------------------------------------------------------------------ solve
    def solve(
        self,
        lb: np.ndarray,
        ub: np.ndarray,
        basis: Optional[BasisState] = None,
    ) -> LpResult:
        """Solve ``min c·x`` over the engine's rows and the bounds ``[lb, ub]``.

        ``basis`` (optional) warm-starts the dual simplex from a previous
        solve's :class:`BasisState`; incompatible or numerically unusable
        bases silently fall back to a cold primal solve.  The returned
        :class:`LpResult` carries the optimal basis (``result.basis``)
        for the caller to reuse, plus ``result.warm`` (the dual warm path
        completed) and ``result.basis_reused`` (a supplied basis was
        accepted) for the statistics plumbing.
        """
        self._refactors_this_solve = 0
        self._solve_triggers = {}
        self._solve_etas_applied = 0
        self._solve_ftran_nnz = 0
        self._solve_btran_nnz = 0
        self._partial_cursor = 0
        self._devex_w = None
        self._dual_w = None
        self.lower = np.concatenate([np.asarray(lb, dtype=np.float64), self._slack_lower()])
        self.upper = np.concatenate([np.asarray(ub, dtype=np.float64), self._slack_upper()])
        if np.any(self.lower > self.upper + _PTOL):
            return LpResult(INFEASIBLE)

        if self.m == 0:
            return self._solve_unconstrained(lb, ub)

        iterations = 0
        reused = False
        if basis is not None:
            self.warm_attempts += 1
            if self._warm_start(basis):
                self.warm_accepted += 1
                reused = True
                status, iterations = self._dual_loop()
                if status == "optimal":
                    iterations += self._canonicalize()
                    return self._result(OPTIMAL, iterations, warm=True, reused=True)
                if status == "infeasible":
                    # Dual unboundedness proves primal infeasibility — the
                    # installed basis was dual feasible, so this is sound.
                    return self._result(INFEASIBLE, iterations, warm=True,
                                        reused=True)
                # Stall / iteration limit: solve cold instead of failing.
                self.warm_fallbacks += 1

        self._cold_start()
        status, more = self._primal_phase1()
        iterations += more
        if status == "infeasible":
            return self._result(INFEASIBLE, iterations, reused=reused)
        if status != "feasible":
            return self._result(ERROR, iterations, reused=reused)
        status, more = self._primal_loop(self.c)
        iterations += more
        if status == "unbounded":
            return self._result(UNBOUNDED, iterations, reused=reused)
        if status != "optimal":
            return self._result(ERROR, iterations, reused=reused)
        iterations += self._canonicalize()
        return self._result(OPTIMAL, iterations, reused=reused)

    # --------------------------------------------------------------- plumbing
    def _slack_lower(self) -> np.ndarray:
        return np.zeros(self.m)

    def _slack_upper(self) -> np.ndarray:
        upper = np.full(self.m, np.inf)
        upper[self.m_ub :] = 0.0  # == rows: slack fixed at zero
        return upper

    def _solve_unconstrained(self, lb, ub) -> LpResult:
        c = self._c_structural
        # Zero-cost variables take any feasible value: zero clipped into
        # the box (which is the lower bound when that is finite).
        indifferent = np.clip(np.zeros_like(c), lb, ub)
        x = np.where(c > 0, lb, np.where(c < 0, ub, indifferent))
        if np.any(~np.isfinite(x)):
            return LpResult(UNBOUNDED)
        return LpResult(OPTIMAL, x=np.asarray(x, dtype=np.float64),
                        objective=float(c @ x), iterations=0)

    def _nonbasic_values(self) -> np.ndarray:
        """Full-length value vector with basic entries zeroed."""
        values = np.zeros(self.total)
        at_lower = self.status == AT_LOWER
        at_upper = self.status == AT_UPPER
        values[at_lower] = self.lower[at_lower]
        values[at_upper] = self.upper[at_upper]
        values[self.basis] = 0.0
        return values

    def _recompute_basics(self) -> None:
        rhs = self.b - self._w_matvec(self._nonbasic_values())
        self.x_basic = self._ftran(rhs)

    def _refactorize(self, trigger: str = "start") -> bool:
        """Factorize the current basis from scratch; count by ``trigger``.

        On failure (singular basis) the previous factorization and eta
        file — still a valid representation — are left installed.
        """
        columns = [self._column(int(j)) for j in self.basis]
        if self.mode == "dense":
            matrix = np.zeros((self.m, self.m))
            for k, (rows, vals) in enumerate(columns):
                matrix[rows, k] = vals
            factor = DenseFactors.from_matrix(matrix)
        else:
            factor = factorize_markowitz(
                columns, self.m, self.options.markowitz_tol
            )
        if factor is None:
            return False
        self._factor = factor
        self._etas = []
        self._eta_nnz = 0
        self.refactorizations += 1
        self._refactors_this_solve += 1
        self.refactor_triggers[trigger] = self.refactor_triggers.get(trigger, 0) + 1
        self._solve_triggers[trigger] = self._solve_triggers.get(trigger, 0) + 1
        self._pivots_since_refactor = 0
        return True

    def _cold_start(self) -> None:
        """All-slack basis; structural variables rest on their nearest bound."""
        self.basis = np.arange(self.n, self.n + self.m, dtype=np.int64)
        status = np.full(self.total, AT_LOWER, dtype=np.int8)
        no_lower = ~np.isfinite(self.lower)
        has_upper = np.isfinite(self.upper)
        status[no_lower & has_upper] = AT_UPPER
        status[no_lower & ~has_upper] = FREE
        status[self.basis] = BASIC
        self.status = status
        # The all-slack basis is the identity — no need to eliminate.
        if self.mode == "dense":
            self._factor = DenseFactors.identity(self.m)
        else:
            self._factor = factorize_markowitz(
                [self._slack_columns[i] for i in range(self.m)], self.m
            )
        self._etas = []
        self._eta_nnz = 0
        self.refactorizations += 1
        self._refactors_this_solve += 1
        self.refactor_triggers["start"] = self.refactor_triggers.get("start", 0) + 1
        self._solve_triggers["start"] = self._solve_triggers.get("start", 0) + 1
        self._pivots_since_refactor = 0
        self._recompute_basics()

    def _warm_start(self, state: BasisState) -> bool:
        """Install ``state`` and verify it is usable for a dual solve."""
        if not state.matches(self.m, self.total):
            return False
        # Copy: the node's BasisState is shared by every sibling, and the
        # solve mutates the installed arrays in place.
        basis = np.array(state.basis, dtype=np.int64, copy=True)
        if np.any(basis < 0) or np.any(basis >= self.total):
            return False
        if np.unique(basis).shape[0] != self.m:
            return False
        status = np.asarray(state.status, dtype=np.int8).copy()
        is_basic = np.zeros(self.total, dtype=bool)
        is_basic[basis] = True
        # Columns recorded basic that are not in the basis (a state from
        # a foreign model) rest on a bound like any other nonbasic.
        status[(status == BASIC) & ~is_basic] = AT_LOWER
        status[basis] = BASIC
        # Re-anchor nonbasic columns whose recorded bound does not exist
        # under the current bound vectors (chained contexts may cross
        # models; branching only ever tightens, but stay defensive).
        nonbasic = status != BASIC
        at_lower = nonbasic & (status == AT_LOWER) & ~np.isfinite(self.lower)
        status[at_lower & np.isfinite(self.upper)] = AT_UPPER
        status[at_lower & ~np.isfinite(self.upper)] = FREE
        at_upper = nonbasic & (status == AT_UPPER) & ~np.isfinite(self.upper)
        status[at_upper & np.isfinite(self.lower)] = AT_LOWER
        status[at_upper & ~np.isfinite(self.lower)] = FREE
        free = nonbasic & (status == FREE) & np.isfinite(self.lower)
        status[free] = AT_LOWER
        self.basis = basis
        self.status = status
        self._factor = None
        if not self._refactorize():
            return False
        # Dual feasibility: repair by bound flips where a finite opposite
        # bound exists; give up (cold start) when it does not.
        y = self._btran(self.c[self.basis])
        d = self._reduced_costs(self.c, y)
        movable = (self.upper - self.lower > self.options.tolerance) & (self.status != BASIC)
        bad_lower = movable & (self.status == AT_LOWER) & (d < -_DTOL)
        if np.any(bad_lower & ~np.isfinite(self.upper)):
            return False
        bad_upper = movable & (self.status == AT_UPPER) & (d > _DTOL)
        if np.any(bad_upper & ~np.isfinite(self.lower)):
            return False
        if np.any(movable & (self.status == FREE) & (np.abs(d) > _DTOL)):
            return False
        self.status[bad_lower] = AT_UPPER
        self.status[bad_upper] = AT_LOWER
        self._recompute_basics()
        return True

    # ----------------------------------------------------------------- pivots
    def _pivot_update(self, row: int, alpha: np.ndarray) -> bool:
        """Absorb the basis change of ``row`` into the factorization.

        Dense mode applies the classic rank-1 inverse update; LU mode
        appends a product-form eta recording the (genuinely sparse)
        entering column.  Either mode may then refactorize — on the
        pivot/eta-count cap, on eta fill-in, or on a sampled residual
        breach — in which case ``x_basic`` is recomputed exactly and
        True is returned.
        """
        opts = self.options
        self._pivots_since_refactor += 1
        if self.mode == "dense":
            self._factor.update(row, alpha)
            if self._pivots_since_refactor >= opts.refactor_interval:
                if self._refactorize("interval"):
                    self._recompute_basics()
                    return True
            return False
        # LU mode: product-form update eta.  FTRAN through sparse LU
        # leaves unreached entries exactly 0.0, so nonzero extraction
        # recovers the true sparsity of the entering column.
        rows = np.flatnonzero(alpha)
        rows = rows[rows != row]
        self._etas.append((int(row), float(alpha[row]), rows, alpha[rows]))
        self._eta_nnz += rows.size + 1
        self.etas_created += 1
        trigger = None
        if len(self._etas) >= opts.refactor_interval:
            trigger = "interval"
        elif self._eta_nnz > opts.refactor_fill_factor * max(self.m, self._factor.nnz):
            trigger = "fill"
        elif (
            opts.residual_interval
            and len(self._etas) % opts.residual_interval == 0
            and self.factor_residual() > opts.residual_tol
        ):
            trigger = "residual"
        if trigger is not None and self._refactorize(trigger):
            self._recompute_basics()
            return True
        return False

    # ----------------------------------------------------------------- primal
    def _primal_phase1(self) -> Tuple[str, int]:
        """Drive the basic variables inside their bounds (short-step).

        Minimises the total bound violation of the basic variables with a
        piecewise-linear cost that is refreshed every iteration; blocking
        is short-step (an infeasible basic stops the ratio test when it
        *reaches* its violated bound), so the violation sum never
        increases and every pivot keeps the remaining pieces linear.
        """
        opts = self.options
        iterations = 0
        stall = 0
        bland = False
        best = math.inf
        while iterations < opts.max_iterations:
            lowerB = self.lower[self.basis]
            upperB = self.upper[self.basis]
            below = self.x_basic < lowerB - _PTOL
            above = self.x_basic > upperB + _PTOL
            infeasibility = float(
                np.sum(lowerB[below] - self.x_basic[below])
                + np.sum(self.x_basic[above] - upperB[above])
            )
            if infeasibility <= _PTOL:
                return "feasible", iterations
            if infeasibility < best - opts.tolerance:
                best = infeasibility
                stall = 0
            elif stall > opts.stall_iterations and not bland:
                bland = True
                self.bland_switches += 1
            else:
                stall += 1
            # Phase-1 cost: -1 per below-bound basic, +1 per above-bound.
            w = np.zeros(self.total)
            w[self.basis[below]] = -1.0
            w[self.basis[above]] = 1.0
            entering, direction = self._price(w, bland)
            if entering < 0:
                return "infeasible", iterations
            alpha = self._ftran_column(entering)
            step, blocker, land_upper = self._ratio_test(
                entering, direction, alpha, bland, phase_one=(below, above)
            )
            if step is None:
                # Numerically unbounded phase-1 descent: give up cleanly.
                return "error", iterations
            self._apply_step(entering, direction, alpha, step, blocker, land_upper)
            iterations += 1
        return "error", iterations

    def _canonicalize(self) -> int:
        """Pivot to the deterministic vertex of the optimal face.

        Only columns with zero reduced cost (w.r.t. the real objective)
        may enter, which keeps ``c·x`` exactly invariant: pivoting on a
        zero-reduced-cost column leaves every reduced cost unchanged.
        Minimising the fixed generic secondary objective over that face
        lands on one well-defined vertex no matter how the solve got to
        optimality — warm dual path and cold primal path included.  The
        face walk always uses the full Dantzig scan, so the vertex is
        also independent of the configured pricing rule.
        """
        if not self.options.canonicalize:
            return 0
        status, iterations = self._primal_loop(self._secondary, face_costs=self.c)
        # "unbounded" (an unbounded optimal face) and "error" both simply
        # keep the current — already optimal — vertex.
        return iterations

    def _primal_loop(
        self,
        costs: np.ndarray,
        face_costs: Optional[np.ndarray] = None,
    ) -> Tuple[str, int]:
        """Phase-2 primal iterations under the static cost vector ``costs``.

        With ``face_costs`` the loop is restricted to the optimal face of
        that vector (entering columns must price to zero under it).
        """
        opts = self.options
        iterations = 0
        stall = 0
        bland = False
        best = math.inf
        limit = opts.max_iterations if face_costs is None else 2 * self.total + 16
        if opts.pricing == "devex" and face_costs is None:
            self._devex_w = np.ones(self.total)
        try:
            while iterations < limit:
                entering, direction = self._price(costs, bland, face_costs=face_costs)
                if entering < 0:
                    return "optimal", iterations
                alpha = self._ftran_column(entering)
                step, blocker, land_upper = self._ratio_test(entering, direction, alpha, bland)
                if step is None:
                    return "unbounded", iterations
                if (
                    self._devex_w is not None
                    and face_costs is None
                    and blocker != -1
                ):
                    self._devex_update(entering, blocker, alpha)
                self._apply_step(entering, direction, alpha, step, blocker, land_upper)
                iterations += 1
                objective = float(costs @ self._current_values())
                if objective < best - opts.tolerance:
                    best = objective
                    stall = 0
                elif stall > opts.stall_iterations and not bland:
                    bland = True
                    self.bland_switches += 1
                else:
                    stall += 1
            return "error", iterations
        finally:
            if face_costs is None:
                self._devex_w = None

    def _devex_update(self, entering: int, blocker: int, alpha: np.ndarray) -> None:
        """Devex reference-weight update for the pivot about to happen.

        Must run *before* the basis arrays change: it needs the leaving
        variable at ``basis[blocker]`` and the pre-pivot ``B⁻¹``.
        """
        ar = alpha[blocker]
        if abs(ar) <= 1e-12:
            return
        rho = self._btran_unit(blocker)
        alpha_row = self._pi_row(rho)
        wq = max(float(self._devex_w[entering]), 1.0)
        candidate = (alpha_row / ar) ** 2 * wq
        np.maximum(self._devex_w, candidate, out=self._devex_w)
        leaving = int(self.basis[blocker])
        self._devex_w[leaving] = max(wq / (ar * ar), 1.0)
        self._devex_w[entering] = 1.0
        if float(self._devex_w.max()) > 1e8:
            # Reference-framework reset: weights have drifted too far to
            # steer reliably; restart from the unit frame.
            self._devex_w[:] = 1.0

    def _price(
        self,
        costs: np.ndarray,
        bland: bool,
        face_costs: Optional[np.ndarray] = None,
    ) -> Tuple[int, int]:
        """Pick the entering column under the configured pricing rule.

        Bland mode and canonicalization face walks always run the full
        scan (termination guarantee / path independence); otherwise the
        rule is ``dantzig``, ``partial`` (candidate-list cycling), or
        ``devex`` when a weight frame is active.
        """
        tol = self.options.tolerance
        y = self._btran(costs[self.basis])
        if (
            face_costs is None
            and not bland
            and self.options.pricing == "partial"
        ):
            return self._price_partial(costs, y)
        d = self._reduced_costs(costs, y)
        movable = self.upper - self.lower > tol
        nonbasic = (self.status != BASIC) & movable
        if face_costs is not None:
            y_face = self._btran(face_costs[self.basis])
            d_face = self._reduced_costs(face_costs, y_face)
            nonbasic &= np.abs(d_face) <= _DTOL
        increase = nonbasic & (
            ((self.status == AT_LOWER) | (self.status == FREE)) & (d < -tol)
        )
        decrease = nonbasic & (
            ((self.status == AT_UPPER) | (self.status == FREE)) & (d > tol)
        )
        eligible = np.where(increase | decrease)[0]
        if eligible.size == 0:
            return -1, 0
        if bland:
            entering = int(eligible[0])
        elif self._devex_w is not None and face_costs is None:
            scores = d[eligible] ** 2 / self._devex_w[eligible]
            entering = int(eligible[np.argmax(scores)])
        else:
            entering = int(eligible[np.argmax(np.abs(d[eligible]))])
        return entering, (1 if increase[entering] else -1)

    def _price_partial(self, costs: np.ndarray, y: np.ndarray) -> Tuple[int, int]:
        """Candidate-list partial pricing: cycle column blocks, price one.

        Blocks are fixed contiguous windows; the cursor remembers which
        window produced the last entering column and resumes there, so a
        solve sweeps the whole column space only when pickings are slim.
        Returning ``(-1, 0)`` required pricing *every* window — a full
        scan's worth of evidence — so optimality claims are as strong as
        Dantzig's.
        """
        tol = self.options.tolerance
        total = self.total
        block = self.options.pricing_block
        if block <= 0:
            block = max(32, -(-total // 8))
        nblocks = -(-total // block)
        for offset in range(nblocks):
            index = (self._partial_cursor + offset) % nblocks
            lo = index * block
            hi = min(total, lo + block)
            d = self._reduced_costs_range(costs, y, lo, hi)
            status = self.status[lo:hi]
            movable = self.upper[lo:hi] - self.lower[lo:hi] > tol
            nonbasic = (status != BASIC) & movable
            increase = nonbasic & (
                ((status == AT_LOWER) | (status == FREE)) & (d < -tol)
            )
            decrease = nonbasic & (
                ((status == AT_UPPER) | (status == FREE)) & (d > tol)
            )
            eligible = np.where(increase | decrease)[0]
            if eligible.size:
                self._partial_cursor = index
                local = int(eligible[np.argmax(np.abs(d[eligible]))])
                return lo + local, (1 if increase[local] else -1)
        return -1, 0

    def _ratio_test(
        self,
        entering: int,
        direction: int,
        alpha: np.ndarray,
        bland: bool,
        phase_one: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ):
        """Largest step the entering variable can take.

        Returns ``(step, blocker, land_upper)`` where ``blocker`` is
        ``-1`` for a bound flip of the entering variable, otherwise the
        blocking basis row, and ``land_upper`` says which bound the
        leaving variable rests on.  ``(None, None, None)`` signals an
        unbounded step.  In phase 1 (``phase_one`` carries the
        below/above masks) infeasible basics only block when they reach
        the bound they violate; feasible basics block as usual.
        """
        tol = self.options.tolerance
        delta = -direction * alpha  # d(x_B) per unit step of the entering var
        lowerB = self.lower[self.basis]
        upperB = self.upper[self.basis]
        ratios = np.full(self.m, np.inf)
        land_upper_mask = np.zeros(self.m, dtype=bool)
        if phase_one is not None:
            below, above = phase_one
            feasible = ~(below | above)
        else:
            below = above = None
            feasible = np.ones(self.m, dtype=bool)

        shrink = feasible & (delta < -tol) & np.isfinite(lowerB)
        ratios[shrink] = (self.x_basic[shrink] - lowerB[shrink]) / (-delta[shrink])
        grow = feasible & (delta > tol) & np.isfinite(upperB)
        ratios[grow] = (upperB[grow] - self.x_basic[grow]) / delta[grow]
        land_upper_mask[grow] = True
        if below is not None:
            rising = below & (delta > tol)
            ratios[rising] = (lowerB[rising] - self.x_basic[rising]) / delta[rising]
            land_upper_mask[rising] = False
            falling = above & (delta < -tol)
            ratios[falling] = (self.x_basic[falling] - upperB[falling]) / (-delta[falling])
            land_upper_mask[falling] = True
        np.maximum(ratios, 0.0, out=ratios)

        span = self.upper[entering] - self.lower[entering]
        bound_step = span if math.isfinite(span) else np.inf

        best = float(np.min(ratios))
        if bound_step < best - tol:
            return bound_step, -1, False
        if not math.isfinite(best):
            if math.isfinite(bound_step):
                return bound_step, -1, False
            return None, None, None
        candidates = np.where(ratios <= best + tol)[0]
        if bland:
            blocker = int(candidates[np.argmin(self.basis[candidates])])
        else:
            blocker = int(candidates[np.argmax(np.abs(delta[candidates]))])
        return float(ratios[blocker]), blocker, bool(land_upper_mask[blocker])

    def _apply_step(self, entering, direction, alpha, step, blocker, land_upper) -> None:
        """Move the entering variable by ``step`` and pivot/flip accordingly."""
        if step:
            self.x_basic -= direction * step * alpha
        if blocker == -1:
            # Bound flip: the entering variable crosses to its other bound.
            self.status[entering] = AT_UPPER if direction > 0 else AT_LOWER
            return
        if self.status[entering] == AT_LOWER:
            value = self.lower[entering] + direction * step
        elif self.status[entering] == AT_UPPER:
            value = self.upper[entering] + direction * step
        else:  # FREE enters from zero
            value = direction * step
        leaving = int(self.basis[blocker])
        self.status[leaving] = AT_UPPER if land_upper else AT_LOWER
        self.basis[blocker] = entering
        self.status[entering] = BASIC
        if not self._pivot_update(blocker, alpha):
            self.x_basic[blocker] = value

    def _current_values(self) -> np.ndarray:
        values = self._nonbasic_values()
        values[self.basis] = self.x_basic
        return values

    # ------------------------------------------------------------------- dual
    def _dual_loop(self) -> Tuple[str, int]:
        """Bounded-variable dual simplex from the installed (dual-feasible) basis."""
        opts = self.options
        tol = opts.tolerance
        iterations = 0
        stall = 0
        bland = False
        if opts.dual_pricing == "devex":
            self._dual_w = np.ones(self.m)
        # The monotone quantity of the dual simplex is the objective
        # (nondecreasing every pivot); total primal violation may
        # oscillate on the way to feasibility, so stall detection keys
        # on the objective, not the violation.
        best_obj = -math.inf
        while iterations < opts.max_iterations:
            lowerB = self.lower[self.basis]
            upperB = self.upper[self.basis]
            with np.errstate(invalid="ignore"):
                viol_low = lowerB - self.x_basic
                viol_up = self.x_basic - upperB
                violation = np.maximum(np.maximum(viol_low, viol_up), 0.0)
            violation[~np.isfinite(violation)] = 0.0
            total_viol = float(np.sum(violation))
            if total_viol <= _PTOL * max(1, self.m):
                return "optimal", iterations
            objective = float(self.c @ self._current_values())
            if objective > best_obj + tol:
                best_obj = objective
                stall = 0
            else:
                stall += 1
                if not bland and stall > opts.stall_iterations:
                    bland = True
                    self.bland_switches += 1
                    stall = 0
                elif bland and stall > 4 * max(1, opts.stall_iterations):
                    # Bland's rule should terminate on its own; this is
                    # the belt-and-braces exit to the cold fallback.
                    return "stalled", iterations
            if bland:
                row = int(np.where(violation > _PTOL)[0][0])
            elif self._dual_w is not None:
                row = int(np.argmax(violation * violation / self._dual_w))
            else:
                row = int(np.argmax(violation))
            leaving_below = bool(viol_low[row] >= viol_up[row])

            rho = self._btran_unit(row)
            alpha_row = self._pi_row(rho)
            # sigma orients the row so eligible entering columns raise a
            # below-bound basic / lower an above-bound one.
            sigma = -1.0 if leaving_below else 1.0
            alpha_eff = sigma * alpha_row
            movable = (self.upper - self.lower > tol) & (self.status != BASIC)
            eligible = movable & (
                ((self.status == AT_LOWER) & (alpha_eff > tol))
                | ((self.status == AT_UPPER) & (alpha_eff < -tol))
                | ((self.status == FREE) & (np.abs(alpha_eff) > tol))
            )
            idx = np.where(eligible)[0]
            if idx.size == 0:
                return "infeasible", iterations
            y = self._btran(self.c[self.basis])
            d = self._reduced_costs(self.c, y)
            # Dual ratio: d_j / alpha_eff_j is >= 0 for every eligible
            # column (AT_LOWER has d >= 0, alpha_eff > 0; AT_UPPER has
            # d <= 0, alpha_eff < 0; FREE has d ~ 0).
            ratios = d[idx] / alpha_eff[idx]
            np.maximum(ratios, 0.0, out=ratios)
            best_ratio = float(np.min(ratios))
            ties = idx[ratios <= best_ratio + tol]
            if bland:
                entering = int(ties[0])
            else:
                entering = int(ties[np.argmax(np.abs(alpha_row[ties]))])

            target = lowerB[row] if leaving_below else upperB[row]
            step = (self.x_basic[row] - target) / alpha_row[entering]
            alpha = self._ftran_column(entering)
            if self._dual_w is not None:
                self._dual_devex_update(row, alpha)
            if self.status[entering] == AT_LOWER:
                value = self.lower[entering] + step
            elif self.status[entering] == AT_UPPER:
                value = self.upper[entering] + step
            else:
                value = step
            self.x_basic -= step * alpha
            leaving = int(self.basis[row])
            self.status[leaving] = AT_LOWER if leaving_below else AT_UPPER
            self.basis[row] = entering
            self.status[entering] = BASIC
            if not self._pivot_update(row, alpha):
                self.x_basic[row] = value
            iterations += 1
        return "stalled", iterations

    def _dual_devex_update(self, row: int, alpha: np.ndarray) -> None:
        """Dual Devex row-weight update from the entering column ``alpha``."""
        ar = alpha[row]
        if abs(ar) <= 1e-12:
            return
        candidate = (alpha / ar) ** 2 * self._dual_w[row]
        np.maximum(self._dual_w, candidate, out=self._dual_w)
        self._dual_w[row] = max(float(self._dual_w[row]) / (ar * ar), 1.0)
        if float(self._dual_w.max()) > 1e8:
            self._dual_w[:] = 1.0

    # ----------------------------------------------------------------- result
    def _result(self, status: str, iterations: int, warm: bool = False,
                reused: bool = False) -> LpResult:
        refactors = self._refactors_this_solve
        counters = dict(
            refactorizations=refactors,
            etas_applied=self._solve_etas_applied,
            ftran_nnz=self._solve_ftran_nnz,
            btran_nnz=self._solve_btran_nnz,
            refactor_triggers=dict(self._solve_triggers),
            pricing=self.options.pricing,
        )
        if status != OPTIMAL:
            return LpResult(status, iterations=iterations, warm=warm,
                            basis_reused=reused, **counters)
        values = self._current_values()
        x = values[: self.n]
        lb = self.lower[: self.n]
        ub = self.upper[: self.n]
        # Clip pivot fuzz back into the box (np.clip handles infinite
        # bounds on either side).
        x = np.clip(x, lb, ub)
        # Structural reduced costs at the optimal basis: one extra BTRAN
        # (after the counters snapshot, so per-solve accounting is not
        # disturbed) buys branch-and-bound its reduced-cost penalties.
        y = self._btran(self.c[self.basis])
        reduced = self._reduced_costs(self.c, y)[: self.n].copy()
        return LpResult(
            OPTIMAL,
            x=x,
            objective=float(self._c_structural @ x),
            iterations=iterations,
            basis=BasisState(self.basis.copy(), self.status.copy()),
            warm=warm,
            basis_reused=reused,
            reduced_costs=reduced,
            **counters,
        )


def solve_lp_revised(
    form: StandardForm,
    options: Optional[RevisedOptions] = None,
    basis: Optional[BasisState] = None,
) -> LpResult:
    """One-shot convenience wrapper: build an engine and solve ``form``."""
    engine = RevisedSimplex(form, options)
    return engine.solve(form.lb, form.ub, basis=basis)
