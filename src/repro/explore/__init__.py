"""Scenario catalog and Pareto design-space exploration.

The subsystem that turns the repository from "reproduce the paper's
tables" into "explore the design space the paper could not": a registry
of parameterized scenario families (:mod:`repro.explore.scenarios`),
sweep grids over them (:mod:`repro.explore.grid`), a warm-chained
multi-objective explorer (:mod:`repro.explore.explorer`) with Pareto
reduction (:mod:`repro.explore.pareto`) and plain-text reporting
(:mod:`repro.explore.report`).
"""

from .grid import GridSpecError, ScenarioGrid, ScenarioSweep
from .pareto import ParetoAccumulator, dominates, pareto_front, pareto_indices
from .scenarios import (
    ExploreError,
    ParamSpec,
    ScenarioFamily,
    ScenarioParamError,
    ScenarioPoint,
    UnknownScenarioError,
    list_scenario_families,
    register_scenario,
    scenario_family,
)
from .explorer import (
    CheckpointError,
    DesignSpaceExplorer,
    ExplorePointResult,
    ExploreResult,
    PointSummary,
)
from .report import render_explore_report

__all__ = [
    "ExploreError",
    "UnknownScenarioError",
    "ScenarioParamError",
    "GridSpecError",
    "ParamSpec",
    "ScenarioFamily",
    "ScenarioPoint",
    "register_scenario",
    "scenario_family",
    "list_scenario_families",
    "ScenarioSweep",
    "ScenarioGrid",
    "dominates",
    "pareto_front",
    "pareto_indices",
    "ParetoAccumulator",
    "CheckpointError",
    "DesignSpaceExplorer",
    "ExplorePointResult",
    "PointSummary",
    "ExploreResult",
    "render_explore_report",
]
