"""Pareto dominance over multi-objective design points.

The explorer reduces a sweep into a Pareto front over *minimised*
objectives — mapping cost, solver effort (LP solves), wall time.  A point
``a`` dominates ``b`` when it is no worse in every objective and strictly
better in at least one; the front is the subset no other point dominates.

Two implementations:

* the batch helpers (:func:`pareto_indices` / :func:`pareto_front`) are
  deliberately simple O(n^2) pairwise pruning — fine for a few hundred
  points, and a predictable, stable result order matters more than
  asymptotics there (the front preserves input order, and exact ties —
  identical objective vectors — are *all* kept);
* :class:`ParetoAccumulator` maintains the same front *incrementally*,
  one point at a time, in O(front size) per point.  That is what the
  streaming explorer uses: a 10^5-point sweep never holds more than the
  current front in memory, and because Pareto dominance is transitive
  the accumulated front equals the batch front over the same points
  regardless of insertion order (only the *reported* order is fixed, by
  each point's explicit order key).
"""

from __future__ import annotations

from typing import Any, Callable, Generic, List, Optional, Sequence, Tuple, TypeVar

__all__ = ["dominates", "pareto_front", "pareto_indices", "ParetoAccumulator"]

T = TypeVar("T")


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when objective vector ``a`` Pareto-dominates ``b`` (minimise)."""
    if len(a) != len(b):
        raise ValueError(f"objective vectors differ in length ({len(a)} vs {len(b)})")
    strictly_better = False
    for ai, bi in zip(a, b):
        if ai > bi:
            return False
        if ai < bi:
            strictly_better = True
    return strictly_better


def pareto_indices(vectors: Sequence[Sequence[float]]) -> List[int]:
    """Indices of the non-dominated vectors, in input order."""
    front: List[int] = []
    for i, candidate in enumerate(vectors):
        if not any(
            dominates(vectors[j], candidate) for j in range(len(vectors)) if j != i
        ):
            front.append(i)
    return front


def pareto_front(
    items: Sequence[T],
    key: Optional[Callable[[T], Sequence[float]]] = None,
) -> List[T]:
    """The non-dominated subset of ``items``, preserving input order.

    ``key`` maps an item to its objective vector (all minimised); by
    default the items themselves are treated as vectors.
    """
    vectors: List[Tuple[float, ...]] = [
        tuple(float(v) for v in (key(item) if key is not None else item))
        for item in items
    ]
    return [items[i] for i in pareto_indices(vectors)]


class ParetoAccumulator(Generic[T]):
    """Incremental Pareto front over minimised objective vectors.

    ``add(vector, item, order_key)`` offers one point: the point is
    rejected when an existing front member dominates it, otherwise it
    joins the front and evicts every member it dominates.  Dominance is
    transitive, so a point rejected early can never belong to the final
    front — the accumulated set always equals the batch front of every
    point offered so far.

    ``order_key`` fixes the point's position in :meth:`front` (defaults
    to insertion order), which is how the streaming explorer — which
    completes points wave by wave, not chain by chain — reproduces the
    chain-major front order of the batch reduction byte for byte.
    """

    def __init__(self) -> None:
        self._entries: List[Tuple[Tuple[float, ...], Any, T]] = []
        self._offered = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def offered(self) -> int:
        """How many points have been offered (kept or not)."""
        return self._offered

    def add(self, vector: Sequence[float], item: T,
            order_key: Optional[Any] = None) -> bool:
        """Offer one point; returns True when it (currently) joins the front."""
        vec = tuple(float(v) for v in vector)
        if order_key is None:
            order_key = self._offered
        self._offered += 1
        for existing, _, _ in self._entries:
            if dominates(existing, vec):
                return False
        self._entries = [
            entry for entry in self._entries if not dominates(vec, entry[0])
        ]
        self._entries.append((vec, order_key, item))
        return True

    def front(self) -> List[T]:
        """Current front members, ordered by their ``order_key``."""
        return [item for _, _, item in sorted(self._entries, key=lambda e: e[1])]

    def front_vectors(self) -> List[Tuple[float, ...]]:
        """Objective vectors of the current front, in ``order_key`` order."""
        return [vec for vec, _, _ in sorted(self._entries, key=lambda e: e[1])]
