"""Pareto dominance over multi-objective design points.

The explorer reduces a sweep into a Pareto front over *minimised*
objectives — mapping cost, solver effort (LP solves), wall time.  A point
``a`` dominates ``b`` when it is no worse in every objective and strictly
better in at least one; the front is the subset no other point dominates.

The implementation is deliberately simple (O(n^2) pairwise pruning):
grids are hundreds of points, not millions, and a predictable, stable
result order matters more than asymptotics — the front preserves input
order, and exact ties (identical objective vectors) are *all* kept, so
the front of a deterministic sweep is itself deterministic.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

__all__ = ["dominates", "pareto_front", "pareto_indices"]

T = TypeVar("T")


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when objective vector ``a`` Pareto-dominates ``b`` (minimise)."""
    if len(a) != len(b):
        raise ValueError(f"objective vectors differ in length ({len(a)} vs {len(b)})")
    strictly_better = False
    for ai, bi in zip(a, b):
        if ai > bi:
            return False
        if ai < bi:
            strictly_better = True
    return strictly_better


def pareto_indices(vectors: Sequence[Sequence[float]]) -> List[int]:
    """Indices of the non-dominated vectors, in input order."""
    front: List[int] = []
    for i, candidate in enumerate(vectors):
        if not any(
            dominates(vectors[j], candidate) for j in range(len(vectors)) if j != i
        ):
            front.append(i)
    return front


def pareto_front(
    items: Sequence[T],
    key: Optional[Callable[[T], Sequence[float]]] = None,
) -> List[T]:
    """The non-dominated subset of ``items``, preserving input order.

    ``key`` maps an item to its objective vector (all minimised); by
    default the items themselves are treated as vectors.
    """
    vectors: List[Tuple[float, ...]] = [
        tuple(float(v) for v in (key(item) if key is not None else item))
        for item in items
    ]
    return [items[i] for i in pareto_indices(vectors)]
