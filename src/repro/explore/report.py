"""Plain-text rendering of exploration results.

Follows the style of :mod:`repro.core.report`: fixed-width tables a
reader can paste next to the paper.  One table per warm chain (so the
sweep ordering is visible), a mark on the Pareto-front members, and an
aggregate footer with the solver-effort totals that warm chaining is
meant to reduce.
"""

from __future__ import annotations

from typing import List

from ..bench.reporting import ascii_table, format_seconds
from .explorer import ExploreResult

__all__ = ["render_explore_report"]


def render_explore_report(result: ExploreResult) -> str:
    """Render an exploration run as a human-readable report."""
    front = {point.label for point in result.pareto_front()}
    timed_front = {point.label for point in result.pareto_front_timed()}
    sections: List[str] = []

    for index, chain_labels in enumerate(result.chains):
        family = result.grid.sweeps[index].family
        rows = []
        for point in result.points:
            if point.chain != index:
                continue
            row = [
                point.label,
                point.status,
                "-" if point.objective is None else f"{point.objective:.4f}",
                point.lp_solves,
                point.nodes_explored,
                format_seconds(point.wall_time),
                "*" if point.label in front else "-",
            ]
            rows.append(row)
        plural = "s" if len(chain_labels) != 1 else ""
        mode = "warm-chained" if result.warm_chain else "cold"
        table = ascii_table(
            ["point", "status", "objective", "lp", "nodes", "time", "front"],
            rows,
            title=f"Chain {index + 1}: {family} "
            f"({len(chain_labels)} point{plural}, {mode})",
        )
        sections.append(table)

    summary_rows = [
        ["points", len(result.points)],
        ["ok / failed", f"{len(result.ok_points)} / {result.num_failed}"],
        ["pareto front (objective, lp)", len(front)],
        ["pareto front (+wall time)", len(timed_front)],
        ["total LP solves", int(result.total("lp_solves"))],
        ["total nodes", int(result.total("nodes_explored"))],
        ["wall time", format_seconds(result.elapsed)],
        ["workers", result.jobs],
        ["solver", result.solver],
        ["fingerprint", result.fingerprint()[:16]],
    ]
    title = "Exploration summary"
    summary = ascii_table(["metric", "value"], summary_rows, title=title)
    sections.append(summary)
    return "\n\n".join(sections)
