"""Plain-text rendering of exploration results.

Follows the style of :mod:`repro.core.report`: fixed-width tables a
reader can paste next to the paper.  One table per warm chain (so the
sweep ordering is visible), a mark on the Pareto-front members, and an
aggregate footer with the solver-effort totals that warm chaining is
meant to reduce.
"""

from __future__ import annotations

from typing import List

from ..bench.reporting import ascii_table, format_seconds
from .explorer import ExploreResult

__all__ = ["render_explore_report"]


#: Streamed chains longer than this render head/tail excerpts only.
_STREAMED_CHAIN_ROWS = 32


def render_explore_report(result: ExploreResult) -> str:
    """Render an exploration run as a human-readable report."""
    front = {point.label for point in result.pareto_front()}
    timed_front = {point.label for point in result.pareto_front_timed()}
    sections: List[str] = []

    by_chain: List[List] = [[] for _ in result.chains]
    for summary in result.point_summaries():
        by_chain[summary.chain].append(summary)

    for index, chain_labels in enumerate(result.chains):
        family = result.grid.sweeps[index].family
        chain_points = by_chain[index]
        elided = 0
        if result.streamed and len(chain_points) > _STREAMED_CHAIN_ROWS:
            # A 10^4-point streamed chain would bury the summary; show
            # head and tail, point at the JSONL spool for the rest.
            head = _STREAMED_CHAIN_ROWS * 3 // 4
            tail = _STREAMED_CHAIN_ROWS - head
            elided = len(chain_points) - head - tail
            chain_points = chain_points[:head] + chain_points[-tail:]
        rows = []
        for position, point in enumerate(chain_points):
            row = [
                point.label,
                point.status,
                "-" if point.objective is None else f"{point.objective:.4f}",
                point.lp_solves,
                point.nodes_explored,
                format_seconds(point.wall_time),
                "*" if point.label in front else "-",
            ]
            rows.append(row)
            if elided and position == head - 1:
                rows.append([f"... {elided} more points ...", "", "", "", "", "", ""])
        plural = "s" if len(chain_labels) != 1 else ""
        mode = "warm-chained" if result.warm_chain else "cold"
        table = ascii_table(
            ["point", "status", "objective", "lp", "nodes", "time", "front"],
            rows,
            title=f"Chain {index + 1}: {family} "
            f"({len(chain_labels)} point{plural}, {mode})",
        )
        sections.append(table)

    summary_rows = [
        ["points", result.num_points],
        ["ok / failed", f"{result.num_ok} / {result.num_failed}"],
        ["pareto front (objective, lp)", len(front)],
        ["pareto front (+wall time)", len(timed_front)],
        ["total LP solves", int(result.total("lp_solves"))],
        ["total nodes", int(result.total("nodes_explored"))],
        ["wall time", format_seconds(result.elapsed)],
        ["workers", result.jobs],
        ["solver", result.solver],
        ["fingerprint", result.fingerprint()[:16]],
    ]
    if result.streamed:
        summary_rows.append(["results spool", result.results_path or "-"])
    title = "Exploration summary"
    summary = ascii_table(["metric", "value"], summary_rows, title=title)
    sections.append(summary)
    return "\n\n".join(sections)
