"""The scenario registry: named, parameterized scenario families.

The paper's evaluation is a handful of fixed workloads mapped onto one
board family.  A *scenario family* generalises that: it is a named recipe
that turns a parameter dictionary plus a seed into one concrete
``(design, board)`` mapping instance.  Families combine the workload
builders of :mod:`repro.design.workloads`, the synthetic generator of
:mod:`repro.design.generator` and the board builders of
:mod:`repro.arch.builder`, so a single registry covers both "the paper's
image pipeline at growing line widths" and "a synthetic board scaled to
N banks".

Families live in a process-global registry.  Each declares its parameters
(:class:`ParamSpec`: name, type, default, meaning); instantiating a
:class:`ScenarioPoint` validates the supplied parameters against those
specs, so a typo'd knob is an :class:`UnknownScenarioError` /
:class:`ScenarioParamError` at grid-parse time rather than a silent
default deep inside a sweep.

Points serialise to/from JSON through :func:`repro.io.scenario_point_to_dict`
(kind ``"scenario_point"``), which is how grids are stored in explore
artifacts and replayed later.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Tuple

from ..arch.board import Board
from ..arch.builder import (
    apex_board,
    board_with_complexity,
    flex10k_board,
    heterogeneous_cost_board,
    hierarchical_board,
    virtex_board,
)
from ..design.dagsched import DagScheduleGenerator
from ..design.design import Design
from ..design.generator import DesignGenerator
from ..design.workloads import (
    fft_design,
    fir_filter_design,
    image_pipeline_design,
    matrix_multiply_design,
    motion_estimation_design,
)

__all__ = [
    "ExploreError",
    "UnknownScenarioError",
    "ScenarioParamError",
    "ParamSpec",
    "ScenarioFamily",
    "ScenarioPoint",
    "register_scenario",
    "scenario_family",
    "list_scenario_families",
]


class ExploreError(Exception):
    """Base class of the explore subsystem's user-facing errors."""


class UnknownScenarioError(ExploreError):
    """A scenario family name is not in the registry."""


class ScenarioParamError(ExploreError):
    """A scenario parameter is unknown or has an invalid value."""


#: Boards a workload scenario can name in its ``board`` parameter.
NAMED_BOARDS: Dict[str, Callable[[], Board]] = {
    "hierarchical": hierarchical_board,
    "virtex-xcv1000": lambda: virtex_board("XCV1000"),
    "virtex-xcv300": lambda: virtex_board("XCV300"),
    "apex-ep20k400e": lambda: apex_board("EP20K400E"),
    "flex10k-epf10k100": lambda: flex10k_board("EPF10K100"),
}


def _named_board(name: str) -> Board:
    try:
        return NAMED_BOARDS[name]()
    except KeyError:
        raise ScenarioParamError(
            f"unknown board {name!r}; scenario boards are "
            f"{', '.join(sorted(NAMED_BOARDS))}"
        ) from None


@dataclass(frozen=True)
class ParamSpec:
    """One parameter a scenario family accepts."""

    name: str
    kind: str  # "int" | "float" | "str"
    default: Any
    description: str = ""

    def coerce(self, value: Any) -> Any:
        """Parse/convert ``value`` to this parameter's type."""
        try:
            if self.kind == "int":
                if isinstance(value, float) and value != int(value):
                    raise ValueError(value)
                return int(value)
            if self.kind == "float":
                return float(value)
            if self.kind == "str":
                return str(value)
        except (TypeError, ValueError):
            raise ScenarioParamError(
                f"parameter {self.name!r} expects {self.kind}, got {value!r}"
            ) from None
        raise ScenarioParamError(
            f"parameter {self.name!r} has unsupported kind {self.kind!r}"
        )


@dataclass(frozen=True)
class ScenarioFamily:
    """A named recipe turning parameters + seed into (design, board)."""

    name: str
    description: str
    params: Tuple[ParamSpec, ...]
    builder: Callable[[Mapping[str, Any], int], Tuple[Design, Board]] = field(
        repr=False
    )
    #: Whether the builder actually consumes the seed.  The paper's fixed
    #: workloads are fully determined by their parameters; marking them
    #: insensitive lets :class:`ScenarioPoint` normalise the seed to 0 so
    #: labels and cache keys do not pretend ``~s1`` and ``~s2`` are
    #: different instances.
    seed_sensitive: bool = True

    def param(self, name: str) -> ParamSpec:
        for spec in self.params:
            if spec.name == name:
                return spec
        raise ScenarioParamError(
            f"scenario {self.name!r} has no parameter {name!r}; "
            f"it accepts {', '.join(spec.name for spec in self.params)}"
        )

    def resolve_params(self, overrides: Mapping[str, Any]) -> Dict[str, Any]:
        """Defaults merged with validated/coerced ``overrides``."""
        resolved = {spec.name: spec.default for spec in self.params}
        for key, value in overrides.items():
            resolved[key] = self.param(key).coerce(value)
        return resolved

    def build(
        self, overrides: Mapping[str, Any], seed: int = 0
    ) -> Tuple[Design, Board]:
        return self.builder(self.resolve_params(overrides), seed)


#: The process-global registry of scenario families.
_REGISTRY: Dict[str, ScenarioFamily] = {}


def register_scenario(family: ScenarioFamily) -> ScenarioFamily:
    """Register ``family``, replacing an existing one of the same name."""
    _REGISTRY[family.name] = family
    return family


def scenario_family(name: str) -> ScenarioFamily:
    """Look up a family by name; raises :class:`UnknownScenarioError`."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownScenarioError(
            f"unknown scenario family {name!r}; registered families are "
            f"{', '.join(sorted(_REGISTRY))}"
        ) from None


def list_scenario_families() -> List[ScenarioFamily]:
    """Every registered family, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


@dataclass(frozen=True)
class ScenarioPoint:
    """One concrete scenario: a family plus explicit parameter overrides.

    Only the *overrides* are stored (the family's defaults fill the rest
    at build time), which keeps labels and serialised points minimal and
    stable when a family grows new parameters.
    """

    family: str
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        # Validate eagerly: a bad family or parameter should fail at
        # grid-construction time, not mid-sweep inside a worker.
        family = scenario_family(self.family)
        object.__setattr__(self, "params", dict(self.params))
        for key, value in self.params.items():
            self.params[key] = family.param(key).coerce(value)
        if not family.seed_sensitive:
            # The builder ignores the seed, so distinct seeds would only
            # fork labels and cache keys of identical instances.
            object.__setattr__(self, "seed", 0)

    def __hash__(self) -> int:
        # frozen=True's generated __hash__ would choke on the params
        # dict; hash a canonical form consistent with dict equality.
        return hash((self.family, frozenset(self.params.items()), self.seed))

    def label(self) -> str:
        inner = ",".join(f"{k}={self.params[k]}" for k in sorted(self.params))
        suffix = f"[{inner}]" if inner else ""
        seed = f"~s{self.seed}" if self.seed else ""
        return f"{self.family}{suffix}{seed}"

    def resolved_params(self) -> Dict[str, Any]:
        return scenario_family(self.family).resolve_params(self.params)

    def build(self) -> Tuple[Design, Board]:
        """Instantiate the (design, board) pair of this point."""
        return scenario_family(self.family).build(self.params, seed=self.seed)


# ---------------------------------------------------------------------------
# Built-in scenario families
# ---------------------------------------------------------------------------

def _build_image_pipeline(params: Mapping[str, Any], seed: int) -> Tuple[Design, Board]:
    design = image_pipeline_design(
        image_width=params["width"],
        pixel_bits=params["pixel_bits"],
        kernel_size=params["kernel"],
    )
    return design, _named_board(params["board"])


def _build_fir(params: Mapping[str, Any], seed: int) -> Tuple[Design, Board]:
    design = fir_filter_design(
        taps=params["taps"],
        block_size=params["block"],
        sample_bits=params["bits"],
    )
    return design, _named_board(params["board"])


def _build_fft(params: Mapping[str, Any], seed: int) -> Tuple[Design, Board]:
    design = fft_design(points=params["points"], sample_bits=params["bits"])
    return design, _named_board(params["board"])


def _build_matmul(params: Mapping[str, Any], seed: int) -> Tuple[Design, Board]:
    design = matrix_multiply_design(tile=params["tile"], element_bits=params["bits"])
    return design, _named_board(params["board"])


def _build_motion(params: Mapping[str, Any], seed: int) -> Tuple[Design, Board]:
    design = motion_estimation_design(
        block=params["block"],
        search_range=params["search"],
        pixel_bits=params["pixel_bits"],
    )
    return design, _named_board(params["board"])


def _build_random(params: Mapping[str, Any], seed: int) -> Tuple[Design, Board]:
    board = _named_board(params["board"])
    generator = DesignGenerator(seed=seed, conflict_density=params["conflict_density"])
    design = generator.generate(
        params["structures"],
        name=f"random-{params['structures']}seg",
        board=board,
        target_occupancy=params["occupancy"],
    )
    return design, board


def _build_board_scale(params: Mapping[str, Any], seed: int) -> Tuple[Design, Board]:
    banks = params["banks"]
    if banks < 2:
        raise ScenarioParamError("board-scale needs banks >= 2")
    # Derived so the (banks, ports, configs) triple is always consistent
    # with board_with_complexity: half the banks dual-ported, five
    # configuration settings per multi-configuration port.
    ports = banks + banks // 2
    configs = 5 * (ports // 2)
    board = board_with_complexity(
        total_banks=banks,
        total_ports=ports,
        total_configs=configs,
        seed=seed,
        name=f"scale-{banks}banks",
    )
    generator = DesignGenerator(seed=seed, conflict_density=params["conflict_density"])
    design = generator.generate(
        params["segments"],
        name=f"scale-{params['segments']}seg",
        board=board,
        target_occupancy=params["occupancy"],
    )
    return design, board


def _build_dag_schedule(params: Mapping[str, Any], seed: int) -> Tuple[Design, Board]:
    board = _named_board(params["board"])
    generator = DagScheduleGenerator(
        seed=seed,
        depth=params["depth"],
        width=params["width"],
        burstiness=params["burstiness"],
        branch_factor=params["branch"],
        slots=params["slots"],
    )
    design = generator.generate(
        board=board, target_occupancy=params["occupancy"]
    )
    return design, board


def _build_hetero_cost(params: Mapping[str, Any], seed: int) -> Tuple[Design, Board]:
    board = heterogeneous_cost_board(
        tiers=params["tiers"],
        banks_per_tier=params["banks_per_tier"],
        cost_spread=params["cost_spread"],
        seed=seed,
    )
    generator = DesignGenerator(
        seed=seed, conflict_density=params["conflict_density"]
    )
    design = generator.generate(
        params["segments"],
        name=f"hetero-{params['segments']}seg",
        board=board,
        target_occupancy=params["occupancy"],
    )
    return design, board


_BOARD_PARAM = ParamSpec(
    "board", "str", "hierarchical", "named board (see NAMED_BOARDS)"
)

_BUILTIN_FAMILIES: Tuple[ScenarioFamily, ...] = (
    ScenarioFamily(
        name="image-pipeline",
        description="2-D convolution + histogram + gamma pipeline at a line width",
        params=(
            ParamSpec("width", "int", 512, "image line width in pixels"),
            ParamSpec("kernel", "int", 3, "convolution kernel size"),
            ParamSpec("pixel_bits", "int", 8, "pixel word width"),
            _BOARD_PARAM,
        ),
        builder=_build_image_pipeline,
        seed_sensitive=False,
    ),
    ScenarioFamily(
        name="fir-filter",
        description="block-processing FIR filter",
        params=(
            ParamSpec("taps", "int", 64, "filter tap count"),
            ParamSpec("block", "int", 1024, "samples per block"),
            ParamSpec("bits", "int", 16, "sample word width"),
            _BOARD_PARAM,
        ),
        builder=_build_fir,
        seed_sensitive=False,
    ),
    ScenarioFamily(
        name="fft",
        description="iterative radix-2 FFT with ping-pong buffers",
        params=(
            ParamSpec("points", "int", 1024, "transform size"),
            ParamSpec("bits", "int", 16, "sample word width"),
            _BOARD_PARAM,
        ),
        builder=_build_fft,
        seed_sensitive=False,
    ),
    ScenarioFamily(
        name="matrix-multiply",
        description="blocked matrix multiply",
        params=(
            ParamSpec("tile", "int", 64, "tile edge length"),
            ParamSpec("bits", "int", 16, "element word width"),
            _BOARD_PARAM,
        ),
        builder=_build_matmul,
        seed_sensitive=False,
    ),
    ScenarioFamily(
        name="motion-estimation",
        description="full-search block-matching motion estimation",
        params=(
            ParamSpec("block", "int", 16, "macroblock edge length"),
            ParamSpec("search", "int", 16, "search range in pixels"),
            ParamSpec("pixel_bits", "int", 8, "pixel word width"),
            _BOARD_PARAM,
        ),
        builder=_build_motion,
        seed_sensitive=False,
    ),
    ScenarioFamily(
        name="random",
        description="seeded synthetic design on a named board",
        params=(
            ParamSpec("structures", "int", 8, "number of data structures"),
            ParamSpec("conflict_density", "float", 1.0, "conflicting pair share"),
            ParamSpec("occupancy", "float", 0.45, "target board occupancy"),
            _BOARD_PARAM,
        ),
        builder=_build_random,
    ),
    ScenarioFamily(
        name="board-scale",
        description="synthetic design on a board scaled to N banks (Table 3)",
        params=(
            ParamSpec("segments", "int", 8, "number of data structures"),
            ParamSpec("banks", "int", 8, "total physical banks"),
            ParamSpec("conflict_density", "float", 1.0, "conflicting pair share"),
            ParamSpec("occupancy", "float", 0.45, "target board occupancy"),
        ),
        builder=_build_board_scale,
    ),
    ScenarioFamily(
        name="dag-schedule",
        description="time-indexed DAG of tasks list-scheduled under per-slot capacity",
        params=(
            ParamSpec("depth", "int", 4, "layers in the task DAG"),
            ParamSpec("width", "int", 3, "base tasks per layer"),
            ParamSpec("burstiness", "float", 0.0, "layer-width swing in [0, 1]"),
            ParamSpec("branch", "float", 0.5, "inter-layer edge density in [0, 1]"),
            ParamSpec("slots", "int", 2, "schedule slots per control step"),
            ParamSpec("occupancy", "float", 0.45, "target board occupancy"),
            _BOARD_PARAM,
        ),
        builder=_build_dag_schedule,
    ),
    ScenarioFamily(
        name="hetero-cost",
        description="synthetic design on cost-tiered banks (instance-class style)",
        params=(
            ParamSpec("tiers", "int", 3, "memory cost tiers (0 = on-chip)"),
            ParamSpec("banks_per_tier", "int", 4, "bank instances per tier"),
            ParamSpec("cost_spread", "float", 2.0, "latency/pin growth per tier"),
            ParamSpec("segments", "int", 10, "number of data structures"),
            ParamSpec("conflict_density", "float", 1.0, "conflicting pair share"),
            ParamSpec("occupancy", "float", 0.45, "target board occupancy"),
        ),
        builder=_build_hetero_cost,
    ),
)

for _family in _BUILTIN_FAMILIES:
    register_scenario(_family)
