"""Scenario grids: sweep specifications over the scenario registry.

A grid is a list of *sweeps*.  Each sweep names one scenario family and a
set of parameter axes; its points are the Cartesian product of the axis
values, enumerated in **snake order** (last axis fastest, reversing
direction on every pass) so that consecutive points always differ in
exactly one knob.  That enumeration order is the sweep's *chain*: the
explorer hands each point's solve state to the next point as a warm
start (see :mod:`repro.ilp.context`), which only pays off when
neighbours are similar — exactly what one-knob adjacency guarantees.

Grids are written on the command line as spec strings::

    family                              # one point, all defaults
    family@knob=4                       # one point, one override
    family@knob=4:12:2                  # inclusive integer range sweep
    family@knob=0.2|0.5|0.9             # explicit value list
    family@a=1:3,b=x|y                  # 2-D sweep: (a=1,b=x), (a=1,b=y), ...

and parsed by :meth:`ScenarioGrid.parse`.  Values are typed against the
family's :class:`~repro.explore.scenarios.ParamSpec`; numeric ranges use
``lo:hi[:step]`` (step defaults to 1 and must be supplied for floats).
Bad specs raise :class:`GridSpecError` before anything runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Sequence, Tuple

from .scenarios import (
    ExploreError,
    ScenarioParamError,
    ScenarioPoint,
    scenario_family,
)

__all__ = ["GridSpecError", "ScenarioSweep", "ScenarioGrid"]


class GridSpecError(ExploreError):
    """A grid spec string cannot be parsed."""


def _parse_axis_values(family: str, key: str, text: str) -> Tuple[Any, ...]:
    """Parse one axis's value expression into a tuple of typed values."""
    spec = scenario_family(family).param(key)
    if "|" in text:
        parts = [part.strip() for part in text.split("|")]
        if any(not part for part in parts):
            # "k=1|" or "k=|" used to silently drop the empty alternative,
            # turning a typo into a smaller sweep than the user asked for.
            raise GridSpecError(
                f"empty alternative in {family}@{key}={text!r}; every value "
                "between '|' separators must be non-empty"
            )
        return tuple(spec.coerce(part) for part in parts)
    if ":" in text and spec.kind in ("int", "float"):
        parts = text.split(":")
        if len(parts) not in (2, 3):
            raise GridSpecError(
                f"bad range {text!r} for {family}@{key}; use lo:hi[:step]"
            )
        if len(parts) == 2 and spec.kind == "float":
            raise GridSpecError(
                f"float range {text!r} for {family}@{key} needs an explicit "
                "step (lo:hi:step)"
            )
        try:
            lo = spec.coerce(parts[0])
            hi = spec.coerce(parts[1])
            step = spec.coerce(parts[2]) if len(parts) == 3 else 1
        except ScenarioParamError as exc:
            raise GridSpecError(str(exc)) from exc
        if step <= 0 or hi < lo:
            raise GridSpecError(
                f"bad range {text!r} for {family}@{key}; need lo <= hi, step > 0"
            )
        values: List[Any] = []
        index = 0
        while True:
            value = lo + index * step
            if value > hi + (1e-9 if spec.kind == "float" else 0):
                break
            if spec.kind == "float":
                # Rounded so labels and cache keys stay free of float
                # accumulation noise (0.6000000000000001 and the like).
                value = round(value, 10)
            values.append(spec.coerce(value))
            index += 1
        return tuple(values)
    return (spec.coerce(text),)


@dataclass(frozen=True)
class ScenarioSweep:
    """One family plus ordered parameter axes (the unit of chaining)."""

    family: str
    #: ``key -> value tuple`` in axis order; insertion order is preserved
    #: and the **last** axis varies fastest in :meth:`points`.
    axes: Mapping[str, Tuple[Any, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        scenario_family(self.family)  # fail fast on unknown families
        object.__setattr__(self, "axes", dict(self.axes))
        for key, values in self.axes.items():
            spec = scenario_family(self.family).param(key)
            if not values:
                raise GridSpecError(f"axis {self.family}@{key} has no values")
            self.axes[key] = tuple(spec.coerce(v) for v in values)

    def __hash__(self) -> int:
        # frozen=True would generate a __hash__ over the raw fields, and
        # hashing the axes dict raises TypeError; hash a canonical form
        # instead.  frozenset keeps the hash consistent with dict
        # equality, which ignores insertion order.
        return hash((self.family, frozenset(self.axes.items())))

    @property
    def num_points(self) -> int:
        count = 1
        for values in self.axes.values():
            count *= len(values)
        return count

    def iter_points(self, seed: int = 0) -> Iterator[ScenarioPoint]:
        """Lazily enumerate the Cartesian product in snake order.

        The last axis varies fastest and reverses direction on every
        pass, so *consecutive points always differ in exactly one knob* —
        including at axis rollovers — which is the adjacency the warm
        chain relies on.  Nothing is materialised: a 10^6-point sweep
        costs one :class:`~repro.explore.scenarios.ScenarioPoint` at a
        time, which is what lets the streaming explorer run grids far
        beyond what :meth:`points` could hold in memory.
        """
        keys = list(self.axes)
        if not keys:
            yield ScenarioPoint(family=self.family, params={}, seed=seed)
            return
        values = [self.axes[key] for key in keys]
        counts = [len(v) for v in values]
        # Per-axis suffix strides: axis k advances every prod(counts[k+1:])
        # ranks, and its direction flips with the parity of the enclosing
        # block index — the closed form of the nested snake expansion.
        strides = [1] * len(keys)
        for k in range(len(keys) - 2, -1, -1):
            strides[k] = strides[k + 1] * counts[k + 1]
        total = strides[0] * counts[0]
        for rank in range(total):
            combo: Dict[str, Any] = {}
            for k, key in enumerate(keys):
                block = rank // (strides[k] * counts[k])
                offset = (rank // strides[k]) % counts[k]
                if block % 2:
                    offset = counts[k] - 1 - offset
                combo[key] = values[k][offset]
            yield ScenarioPoint(family=self.family, params=combo, seed=seed)

    def points(self, seed: int = 0) -> List[ScenarioPoint]:
        """Materialised :meth:`iter_points` (small sweeps and tests)."""
        return list(self.iter_points(seed=seed))

    @classmethod
    def parse(cls, spec: str) -> "ScenarioSweep":
        """Parse a ``family[@k=v,k2=v1|v2,...]`` spec string."""
        spec = spec.strip()
        if not spec:
            raise GridSpecError("empty grid spec")
        family, _, tail = spec.partition("@")
        family = family.strip()
        scenario_family(family)
        axes: Dict[str, Tuple[Any, ...]] = {}
        if tail:
            for chunk in tail.split(","):
                chunk = chunk.strip()
                if not chunk:
                    continue
                key, eq, text = chunk.partition("=")
                key = key.strip()
                if not eq or not key or not text:
                    raise GridSpecError(
                        f"bad axis {chunk!r} in grid spec {spec!r}; use key=value"
                    )
                if key in axes:
                    raise GridSpecError(
                        f"axis {key!r} given twice in grid spec {spec!r}"
                    )
                axes[key] = _parse_axis_values(family, key, text.strip())
        return cls(family=family, axes=axes)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "family": self.family,
            "axes": {key: list(values) for key, values in self.axes.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSweep":
        axes = data.get("axes") or {}
        return cls(
            family=data["family"],
            axes={key: tuple(values) for key, values in axes.items()},
        )


@dataclass(frozen=True)
class ScenarioGrid:
    """An ordered list of sweeps; one explorer run covers one grid."""

    sweeps: Tuple[ScenarioSweep, ...]

    def __post_init__(self) -> None:
        if not self.sweeps:
            raise GridSpecError("a scenario grid needs at least one sweep")
        object.__setattr__(self, "sweeps", tuple(self.sweeps))

    def __hash__(self) -> int:
        # The generated hash would recurse into the (unhashable-by-
        # default) sweeps before their explicit __hash__ existed; keep an
        # explicit one so the contract is deliberate, not incidental.
        return hash(self.sweeps)

    @classmethod
    def parse(cls, specs: Sequence[str]) -> "ScenarioGrid":
        """Build a grid from spec strings (one sweep per string)."""
        return cls(sweeps=tuple(ScenarioSweep.parse(spec) for spec in specs))

    @property
    def num_points(self) -> int:
        return sum(sweep.num_points for sweep in self.sweeps)

    def chains(self, seed: int = 0) -> List[List[ScenarioPoint]]:
        """One ordered point chain per sweep.

        The chain structure depends only on the grid (never on worker
        counts), which is what keeps warm-chained runs fingerprint-
        identical across ``--jobs`` settings.
        """
        return [sweep.points(seed=seed) for sweep in self.sweeps]

    def iter_chains(self, seed: int = 0) -> List[Iterator[ScenarioPoint]]:
        """Lazy :meth:`chains`: one point *iterator* per sweep.

        Same enumeration order as :meth:`chains`, but nothing is
        materialised — the streaming explorer pulls one point per chain
        per wave.
        """
        return [sweep.iter_points(seed=seed) for sweep in self.sweeps]

    def chain_lengths(self) -> List[int]:
        """Number of points of each chain (cheap: no enumeration)."""
        return [sweep.num_points for sweep in self.sweeps]

    def to_dict(self) -> Dict[str, Any]:
        return {"sweeps": [sweep.to_dict() for sweep in self.sweeps]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioGrid":
        return cls(
            sweeps=tuple(
                ScenarioSweep.from_dict(entry)
                for entry in (data.get("sweeps") or [])
            )
        )
