"""The multi-objective design-space explorer.

:class:`DesignSpaceExplorer` fans a :class:`~repro.explore.grid.ScenarioGrid`
out through the parallel :class:`~repro.engine.MappingEngine` and reduces
the results into Pareto fronts over (mapping objective, LP solves, wall
time).

Execution is *wavefront-parallel over warm chains*: every sweep of the
grid is one chain of adjacent design points, and at step ``k`` the
explorer runs point ``k`` of every chain as one engine batch.  Chains are
warm-chained — each job carries the previous point's
:meth:`~repro.ilp.SolveContext.chain_dict` (incumbent assignment plus
pseudo-cost branching statistics, both keyed by name), so the solver
starts from a near-optimal incumbent instead of from scratch.  Because
the chain structure depends only on the grid, the mapping results are
fingerprint-identical across reruns and worker counts; warm chaining
changes only the solver effort (fewer LP solves), never the mappings.

``warm_chain=False`` (the CLI's ``--cold``) runs the identical grid with
every point solved independently — the baseline the explore artifact's
``total_lp_solves`` is meant to be compared against.

Two execution modes share that wavefront loop:

* **In-memory** (default): every :class:`ExplorePointResult` is kept and
  returned on :attr:`ExploreResult.points` — right for small grids and
  for tests that poke at full records.
* **Streaming** (``results_path``): each completed wave is appended to a
  JSONL spool and folded into an incremental
  :class:`~repro.explore.pareto.ParetoAccumulator`; only a small
  :class:`PointSummary` per point stays in memory, so a :math:`10^5`-point
  grid runs in bounded space.  With ``checkpoint_path`` set the explorer
  additionally records, after every wave, how far each chain has
  progressed (plus the warm-chain contexts), making an interrupted sweep
  resumable at chain/step granularity.  A resumed — or even re-replayed —
  run reproduces the exact fingerprint of an uninterrupted one, because
  the fingerprint depends only on the per-point outcomes in chain order,
  never on how the waves were batched or restarted.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..core.objective import CostWeights
from ..engine import MappingEngine, MappingJob
from ..engine.cache import canonical_hash
from ..engine.jobs import JobResult, _weights_to_dict
from .grid import ScenarioGrid
from .pareto import ParetoAccumulator, pareto_indices
from .scenarios import ExploreError, ScenarioPoint

__all__ = [
    "CheckpointError",
    "ExplorePointResult",
    "PointSummary",
    "ExploreResult",
    "DesignSpaceExplorer",
]


class CheckpointError(ExploreError):
    """A checkpoint/spool pair cannot be resumed safely."""


#: Solver-effort counters accumulated across points (artifact totals).
_COUNTER_KEYS: Tuple[str, ...] = (
    "lp_solves",
    "nodes_explored",
    "simplex_iterations",
    "warm_lp_solves",
    "basis_reuses",
    "refactorizations",
    "etas_applied",
    "retries",
)

#: Current layout version of the checkpoint document.
_CHECKPOINT_VERSION = 1


@dataclass
class ExplorePointResult:
    """Outcome of one scenario point of an exploration run."""

    label: str
    family: str
    params: Dict[str, Any]
    chain: int
    step: int
    status: str
    objective: Optional[float] = None
    wall_time: float = 0.0
    lp_solves: int = 0
    nodes_explored: int = 0
    simplex_iterations: int = 0
    warm_lp_solves: int = 0
    basis_reuses: int = 0
    refactorizations: int = 0
    etas_applied: int = 0
    retries: int = 0
    fingerprint: Optional[str] = None
    cache_hit: bool = False
    error: str = ""
    solve_stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "family": self.family,
            "params": dict(self.params),
            "chain": self.chain,
            "step": self.step,
            "status": self.status,
            "objective": self.objective,
            "wall_time": self.wall_time,
            "lp_solves": self.lp_solves,
            "nodes_explored": self.nodes_explored,
            "simplex_iterations": self.simplex_iterations,
            "warm_lp_solves": self.warm_lp_solves,
            "basis_reuses": self.basis_reuses,
            "refactorizations": self.refactorizations,
            "etas_applied": self.etas_applied,
            "retries": self.retries,
            "fingerprint": self.fingerprint,
            "cache_hit": self.cache_hit,
            "error": self.error,
            "solve_stats": dict(self.solve_stats),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExplorePointResult":
        """Inverse of :meth:`to_dict` (spool replay on resume)."""
        return cls(
            label=data["label"],
            family=data["family"],
            params=dict(data.get("params") or {}),
            chain=int(data["chain"]),
            step=int(data["step"]),
            status=data["status"],
            objective=data.get("objective"),
            wall_time=float(data.get("wall_time") or 0.0),
            lp_solves=int(data.get("lp_solves") or 0),
            nodes_explored=int(data.get("nodes_explored") or 0),
            simplex_iterations=int(data.get("simplex_iterations") or 0),
            warm_lp_solves=int(data.get("warm_lp_solves") or 0),
            basis_reuses=int(data.get("basis_reuses") or 0),
            refactorizations=int(data.get("refactorizations") or 0),
            etas_applied=int(data.get("etas_applied") or 0),
            retries=int(data.get("retries") or 0),
            fingerprint=data.get("fingerprint"),
            cache_hit=bool(data.get("cache_hit")),
            error=data.get("error") or "",
            solve_stats=dict(data.get("solve_stats") or {}),
        )


@dataclass
class PointSummary:
    """The per-point slice a streamed run keeps in memory.

    Exactly the fields the report tables and the run fingerprint need —
    the full record (params, solver statistics, error text) lives only
    in the JSONL spool.
    """

    label: str
    chain: int
    step: int
    status: str
    objective: Optional[float]
    wall_time: float
    lp_solves: int
    nodes_explored: int
    cache_hit: bool
    fingerprint: Optional[str]

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @classmethod
    def from_point(cls, point: ExplorePointResult) -> "PointSummary":
        return cls(
            label=point.label,
            chain=point.chain,
            step=point.step,
            status=point.status,
            objective=point.objective,
            wall_time=point.wall_time,
            lp_solves=point.lp_solves,
            nodes_explored=point.nodes_explored,
            cache_hit=point.cache_hit,
            fingerprint=point.fingerprint,
        )


@dataclass
class ExploreResult:
    """Everything one exploration run produced.

    A streamed run (``streamed=True``) carries :attr:`summaries`,
    :attr:`totals` and the precomputed Pareto fronts instead of full
    :attr:`points` records; the records themselves live in the JSONL
    file at :attr:`results_path`.  Every reduction below works
    identically in both modes — in particular :meth:`fingerprint`
    hashes the same document either way.
    """

    grid: ScenarioGrid
    points: List[ExplorePointResult]
    chains: List[List[str]]
    jobs: int
    solver: str
    warm_chain: bool
    elapsed: float
    cache_stats: Optional[Dict[str, int]] = None
    streamed: bool = False
    results_path: Optional[str] = None
    summaries: Optional[List[PointSummary]] = None
    totals: Optional[Dict[str, float]] = None
    pareto: Optional[List[ExplorePointResult]] = None
    pareto_timed: Optional[List[ExplorePointResult]] = None

    # ------------------------------------------------------------- reductions
    def point_summaries(self) -> List[PointSummary]:
        """Chain-major per-point summaries (both execution modes)."""
        if self.summaries is not None:
            return self.summaries
        return [PointSummary.from_point(point) for point in self.points]

    @property
    def num_points(self) -> int:
        return len(self.point_summaries())

    @property
    def ok_points(self) -> List[ExplorePointResult]:
        return [point for point in self.points if point.ok]

    @property
    def num_ok(self) -> int:
        return sum(1 for summary in self.point_summaries() if summary.ok)

    @property
    def num_failed(self) -> int:
        return self.num_points - self.num_ok

    @property
    def num_cache_hits(self) -> int:
        return sum(1 for summary in self.point_summaries() if summary.cache_hit)

    def serial_seconds(self) -> float:
        """Sum of in-worker wall times, excluding cache hits."""
        return sum(
            summary.wall_time
            for summary in self.point_summaries()
            if not summary.cache_hit
        )

    def total(self, attribute: str) -> float:
        if self.totals is not None and attribute in self.totals:
            return float(self.totals[attribute])
        # Failed points carry objective=None; treat missing values as 0
        # rather than letting sum() add None to a float.
        return float(
            sum(
                value
                for point in self.points
                if (value := getattr(point, attribute)) is not None
            )
        )

    def pareto_front(self) -> List[ExplorePointResult]:
        """Non-dominated points over (objective, LP solves) — deterministic."""
        if self.pareto is not None:
            return self.pareto
        candidates = self.ok_points
        vectors = [(p.objective, float(p.lp_solves)) for p in candidates]
        return [candidates[i] for i in pareto_indices(vectors)]

    def pareto_front_timed(self) -> List[ExplorePointResult]:
        """Front over (objective, LP solves, wall time).

        Wall time is machine- and load-dependent, so this front is
        reported for human consumption but kept out of the run
        fingerprint.
        """
        if self.pareto_timed is not None:
            return self.pareto_timed
        candidates = self.ok_points
        vectors = [(p.objective, float(p.lp_solves), p.wall_time) for p in candidates]
        return [candidates[i] for i in pareto_indices(vectors)]

    def fingerprint(self) -> str:
        """Deterministic content hash of the exploration outcome.

        Covers the grid, the solver, per-point mappings and solver-work
        counts, and the deterministic Pareto front; excludes wall times
        and cache incidentals.  Equal fingerprints mean the run explored
        the same space and found the same mappings with the same effort.
        The document depends only on per-point outcomes in chain order,
        so streamed, checkpoint-resumed and in-memory runs of the same
        grid all hash identically.
        """
        document = {
            "kind": "explore_fingerprint",
            "grid": self.grid.to_dict(),
            "solver": self.solver,
            "warm_chain": self.warm_chain,
            "points": [
                {
                    "label": summary.label,
                    "status": summary.status,
                    "fingerprint": summary.fingerprint,
                    "objective": summary.objective,
                    "lp_solves": summary.lp_solves,
                }
                for summary in self.point_summaries()
            ],
            "pareto_front": [point.label for point in self.pareto_front()],
        }
        return canonical_hash(document)


class _StreamState:
    """Per-wave fold of a streaming run: summaries, totals, fronts."""

    def __init__(self, lengths: List[int]) -> None:
        self.summaries: List[List[Optional[PointSummary]]] = [
            [None] * length for length in lengths
        ]
        self.totals: Dict[str, float] = {key: 0 for key in _COUNTER_KEYS}
        self.totals["objective"] = 0.0
        self.totals["wall_time"] = 0.0
        self.front: ParetoAccumulator[ExplorePointResult] = ParetoAccumulator()
        self.front_timed: ParetoAccumulator[ExplorePointResult] = ParetoAccumulator()

    def add(self, record: ExplorePointResult) -> None:
        self.summaries[record.chain][record.step] = PointSummary.from_point(record)
        for key in _COUNTER_KEYS:
            self.totals[key] += getattr(record, key)
        self.totals["wall_time"] += record.wall_time
        if record.objective is not None:
            self.totals["objective"] += record.objective
        if record.ok:
            # (chain, step) as the order key restores chain-major front
            # order no matter when the point streamed in.
            order = (record.chain, record.step)
            self.front.add(
                (record.objective, float(record.lp_solves)), record, order_key=order
            )
            self.front_timed.add(
                (record.objective, float(record.lp_solves), record.wall_time),
                record,
                order_key=order,
            )

    def flat_summaries(self) -> List[PointSummary]:
        out: List[PointSummary] = []
        for chain in self.summaries:
            for summary in chain:
                if summary is None:
                    raise ExploreError(
                        "internal error: streaming run finished with holes"
                    )
                out.append(summary)
        return out


class DesignSpaceExplorer:
    """Runs a scenario grid through the engine and reduces the results.

    Parameters
    ----------
    grid:
        The scenario grid to explore (one warm chain per sweep).
    jobs:
        Worker processes; chains run concurrently, points within a chain
        sequentially (they feed each other's warm starts).
    solver:
        ILP backend *name*.  Defaults to ``"auto"`` (the built-in
        branch-and-bound) rather than ``scipy-milp`` because warm
        chaining needs a context-capable backend.
    weights:
        Objective weights shared by every point.
    warm_chain:
        Chain each point's solve state into the next point of its sweep
        (default).  ``False`` solves every point cold.
    seed:
        Base seed for the scenario builders.
    time_limit:
        Per-point wall-clock budget in seconds.
    cache_dir / retries:
        Forwarded to the :class:`~repro.engine.MappingEngine`.
    results_path:
        Switches to streaming mode: per-point records are appended to
        this JSONL file as their wave completes, and only summaries are
        kept in memory.
    checkpoint_path:
        With ``results_path``: after every wave a small JSON checkpoint
        (per-chain progress plus warm-chain contexts) is written
        atomically here, and an existing compatible checkpoint is
        resumed from instead of restarting the sweep.
    """

    def __init__(
        self,
        grid: ScenarioGrid,
        jobs: int = 1,
        solver: str = "auto",
        weights: Optional[CostWeights] = None,
        warm_chain: bool = True,
        seed: int = 0,
        time_limit: Optional[float] = None,
        cache_dir: Optional[str] = None,
        retries: int = 0,
        results_path: Optional[str] = None,
        checkpoint_path: Optional[str] = None,
    ) -> None:
        self.grid = grid
        self.jobs = max(1, int(jobs))
        self.solver = solver
        self.weights = weights or CostWeights()
        self.warm_chain = warm_chain
        self.seed = seed
        self.time_limit = time_limit
        self.cache_dir = cache_dir
        self.retries = retries
        self.results_path = results_path
        self.checkpoint_path = checkpoint_path
        if checkpoint_path is not None and results_path is None:
            raise ExploreError(
                "checkpointing needs a results spool; set results_path too"
            )

    # ------------------------------------------------------------------ api
    def run(self) -> ExploreResult:
        if self.results_path is not None:
            return self._run_streaming()
        return self._run_batch()

    # -------------------------------------------------------- in-memory mode
    def _run_batch(self) -> ExploreResult:
        chains = self.grid.chains(seed=self.seed)
        labels = self._unique_labels(chains)
        engine = MappingEngine(
            jobs=self.jobs,
            cache_dir=self.cache_dir,
            retries=self.retries,
            timeout=self.time_limit,
        )

        start = time.perf_counter()
        contexts: List[Optional[Dict[str, Any]]] = [None] * len(chains)
        records: Dict[Tuple[int, int], ExplorePointResult] = {}
        depth = max(len(chain) for chain in chains)
        # One worker pool for the whole run: a wavefront issues one small
        # batch per step, which would otherwise respawn workers each time.
        with engine.persistent_pool():
            for step in range(depth):
                wave = [
                    (index, chain[step])
                    for index, chain in enumerate(chains)
                    if step < len(chain)
                ]
                batch = [
                    self._job(point, labels[index][step], contexts[index])
                    for index, point in wave
                ]
                results = engine.run(batch)
                for (index, point), result in zip(wave, results):
                    records[(index, step)] = self._record(
                        point, index, step, result
                    )
                    if self.warm_chain and result.chain_context is not None:
                        contexts[index] = result.chain_context
        elapsed = time.perf_counter() - start

        points = [
            records[(index, step)]
            for index, chain in enumerate(chains)
            for step in range(len(chain))
        ]
        return ExploreResult(
            grid=self.grid,
            points=points,
            chains=labels,
            jobs=self.jobs,
            solver=self.solver,
            warm_chain=self.warm_chain,
            elapsed=elapsed,
            cache_stats=(
                dict(engine.cache.stats()) if engine.cache is not None else None
            ),
        )

    # -------------------------------------------------------- streaming mode
    def _run_streaming(self) -> ExploreResult:
        lengths = self.grid.chain_lengths()
        labels = self._unique_labels(self.grid.iter_chains(seed=self.seed))
        config_key = self._config_key()

        completed = [0] * len(lengths)
        contexts: List[Optional[Dict[str, Any]]] = [None] * len(lengths)
        prior_elapsed = 0.0
        checkpoint = self._load_checkpoint(config_key, lengths)
        if checkpoint is not None:
            completed = [int(n) for n in checkpoint["completed"]]
            contexts = list(checkpoint["contexts"])
            prior_elapsed = float(checkpoint.get("elapsed") or 0.0)

        state = _StreamState(lengths)
        self._restore_spool(completed, state)

        iters = self.grid.iter_chains(seed=self.seed)
        for index, skip in enumerate(completed):
            for _ in range(skip):
                next(iters[index])

        remaining = sum(lengths) - sum(completed)
        done = list(completed)
        cache_stats: Optional[Dict[str, int]] = None
        start = time.perf_counter()
        if remaining:
            engine = MappingEngine(
                jobs=self.jobs,
                cache_dir=self.cache_dir,
                retries=self.retries,
                timeout=self.time_limit,
            )
            with engine.persistent_pool(), open(
                self.results_path, "a", encoding="utf-8"
            ) as spool:
                for step in range(max(lengths)):
                    wave = [
                        (index, next(iters[index]))
                        for index in range(len(lengths))
                        if completed[index] <= step < lengths[index]
                    ]
                    if not wave:
                        continue
                    batch = [
                        self._job(point, labels[index][step], contexts[index])
                        for index, point in wave
                    ]
                    results = engine.run(batch)
                    for (index, point), result in zip(wave, results):
                        record = self._record(point, index, step, result)
                        spool.write(
                            json.dumps(record.to_dict(), sort_keys=True) + "\n"
                        )
                        state.add(record)
                        if self.warm_chain and result.chain_context is not None:
                            contexts[index] = result.chain_context
                        done[index] = step + 1
                    # The spool must be durable *before* the checkpoint
                    # claims the wave happened; a kill between the two
                    # only loses the checkpoint, never spooled rows.
                    spool.flush()
                    if self.checkpoint_path is not None:
                        self._write_checkpoint(
                            config_key,
                            lengths,
                            done,
                            contexts,
                            prior_elapsed + (time.perf_counter() - start),
                        )
            cache_stats = (
                dict(engine.cache.stats()) if engine.cache is not None else None
            )
        elapsed = prior_elapsed + (time.perf_counter() - start)

        return ExploreResult(
            grid=self.grid,
            points=[],
            chains=labels,
            jobs=self.jobs,
            solver=self.solver,
            warm_chain=self.warm_chain,
            elapsed=elapsed,
            cache_stats=cache_stats,
            streamed=True,
            results_path=str(self.results_path),
            summaries=state.flat_summaries(),
            totals=dict(state.totals),
            pareto=state.front.front(),
            pareto_timed=state.front_timed.front(),
        )

    # --------------------------------------------------- checkpoint plumbing
    def _config_key(self) -> str:
        """Hash of everything that shapes per-point outcomes.

        Worker count and paths are deliberately excluded: resuming with a
        different ``--jobs`` is safe (fingerprints never depend on it),
        while resuming under a different grid/solver/seed/weights must be
        refused — it would splice incompatible results into one spool.
        """
        return canonical_hash(
            {
                "kind": "explore_config",
                "grid": self.grid.to_dict(),
                "solver": self.solver,
                "warm_chain": self.warm_chain,
                "seed": self.seed,
                "weights": _weights_to_dict(self.weights),
                "time_limit": self.time_limit,
            }
        )

    def _load_checkpoint(
        self, config_key: str, lengths: List[int]
    ) -> Optional[Dict[str, Any]]:
        if self.checkpoint_path is None or not os.path.exists(self.checkpoint_path):
            return None
        try:
            with open(self.checkpoint_path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"unreadable checkpoint {self.checkpoint_path}: {exc}; "
                "delete it to restart the sweep"
            ) from exc
        if data.get("kind") != "explore_checkpoint":
            raise CheckpointError(
                f"{self.checkpoint_path} is not an explore checkpoint"
            )
        if data.get("version") != _CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {self.checkpoint_path} has version "
                f"{data.get('version')}, expected {_CHECKPOINT_VERSION}"
            )
        if data.get("config_key") != config_key:
            raise CheckpointError(
                f"checkpoint {self.checkpoint_path} was written by a run with "
                "a different grid/solver/seed/weights configuration; refusing "
                "to resume (delete it to restart)"
            )
        completed = data.get("completed")
        contexts = data.get("contexts")
        if (
            not isinstance(completed, list)
            or not isinstance(contexts, list)
            or len(completed) != len(lengths)
            or len(contexts) != len(lengths)
            or any(not 0 <= int(n) <= lengths[i] for i, n in enumerate(completed))
        ):
            raise CheckpointError(
                f"checkpoint {self.checkpoint_path} does not match the grid's "
                "chain layout"
            )
        return data

    def _write_checkpoint(
        self,
        config_key: str,
        lengths: List[int],
        completed: List[int],
        contexts: List[Optional[Dict[str, Any]]],
        elapsed: float,
    ) -> None:
        document = {
            "kind": "explore_checkpoint",
            "version": _CHECKPOINT_VERSION,
            "config_key": config_key,
            "lengths": list(lengths),
            "completed": list(completed),
            "contexts": contexts,
            "elapsed": elapsed,
            "results_path": str(self.results_path),
        }
        tmp = f"{self.checkpoint_path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(document, handle, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, self.checkpoint_path)

    def _restore_spool(self, completed: List[int], state: _StreamState) -> None:
        """Rebuild ``state`` from the spool and trim it to the checkpoint.

        Rows beyond the checkpointed progress (a wave that spooled but
        was killed before its checkpoint landed, including a torn final
        line) are dropped and recomputed; a spool *missing* checkpointed
        rows is unrecoverable and refused.
        """
        expected = sum(completed)
        if expected == 0:
            # Fresh start: truncate any stale spool from a previous run.
            with open(self.results_path, "w", encoding="utf-8"):
                pass
            return
        kept: Dict[Tuple[int, int], str] = {}
        try:
            with open(self.results_path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        data = json.loads(line)
                        record = ExplorePointResult.from_dict(data)
                    except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                        # Only a post-checkpoint (usually final, torn)
                        # row may be unparseable; if a checkpointed row
                        # was lost the count check below catches it.
                        continue
                    key = (record.chain, record.step)
                    if (
                        0 <= record.chain < len(completed)
                        and record.step < completed[record.chain]
                        and key not in kept
                    ):
                        kept[key] = line
                        state.add(record)
        except OSError as exc:
            raise CheckpointError(
                f"checkpoint expects results spool {self.results_path}, "
                f"which cannot be read: {exc}"
            ) from exc
        if len(kept) != expected:
            raise CheckpointError(
                f"results spool {self.results_path} holds {len(kept)} of the "
                f"{expected} rows the checkpoint recorded; delete the "
                "checkpoint to restart the sweep"
            )
        # Rewrite the spool to exactly the checkpointed rows, in chain-
        # major order, so the file is torn-write-free before appending.
        tmp = f"{self.results_path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            for key in sorted(kept):
                handle.write(kept[key] + "\n")
        os.replace(tmp, self.results_path)

    # ------------------------------------------------------------- internals
    def _unique_labels(
        self, chains: Iterable[Iterable[ScenarioPoint]]
    ) -> List[List[str]]:
        """Per-chain point labels, deduplicated deterministically."""
        seen: Dict[str, int] = {}
        labels: List[List[str]] = []
        for chain in chains:
            row: List[str] = []
            for point in chain:
                label = point.label()
                count = seen.get(label, 0)
                seen[label] = count + 1
                row.append(label if count == 0 else f"{label}#{count + 1}")
            labels.append(row)
        return labels

    def _job(
        self,
        point: ScenarioPoint,
        label: str,
        context: Optional[Dict[str, Any]],
    ) -> MappingJob:
        design, board = point.build()
        return MappingJob(
            board=board,
            design=design,
            weights=self.weights,
            solver=self.solver,
            label=label,
            timeout=self.time_limit,
            chain_context=context if self.warm_chain else None,
            export_context=self.warm_chain,
        )

    def _record(
        self,
        point: ScenarioPoint,
        chain: int,
        step: int,
        result: JobResult,
    ) -> ExplorePointResult:
        stats = result.solve_stats
        return ExplorePointResult(
            label=result.label,
            family=point.family,
            params=point.resolved_params(),
            chain=chain,
            step=step,
            status=result.status,
            objective=result.objective,
            wall_time=result.wall_time,
            lp_solves=int(stats.get("lp_solves", 0) or 0),
            nodes_explored=int(stats.get("nodes_explored", 0) or 0),
            simplex_iterations=int(stats.get("simplex_iterations", 0) or 0),
            warm_lp_solves=int(stats.get("warm_lp_solves", 0) or 0),
            basis_reuses=int(stats.get("basis_reuses", 0) or 0),
            refactorizations=int(stats.get("refactorizations", 0) or 0),
            etas_applied=int(stats.get("etas_applied", 0) or 0),
            retries=int(stats.get("retries", 0) or 0),
            fingerprint=result.fingerprint,
            cache_hit=result.cache_hit,
            error=result.error,
            solve_stats=dict(stats),
        )
