"""The multi-objective design-space explorer.

:class:`DesignSpaceExplorer` fans a :class:`~repro.explore.grid.ScenarioGrid`
out through the parallel :class:`~repro.engine.MappingEngine` and reduces
the results into Pareto fronts over (mapping objective, LP solves, wall
time).

Execution is *wavefront-parallel over warm chains*: every sweep of the
grid is one chain of adjacent design points, and at step ``k`` the
explorer runs point ``k`` of every chain as one engine batch.  Chains are
warm-chained — each job carries the previous point's
:meth:`~repro.ilp.SolveContext.chain_dict` (incumbent assignment plus
pseudo-cost branching statistics, both keyed by name), so the solver
starts from a near-optimal incumbent instead of from scratch.  Because
the chain structure depends only on the grid, the mapping results are
fingerprint-identical across reruns and worker counts; warm chaining
changes only the solver effort (fewer LP solves), never the mappings.

``warm_chain=False`` (the CLI's ``--cold``) runs the identical grid with
every point solved independently — the baseline the explore artifact's
``total_lp_solves`` is meant to be compared against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.objective import CostWeights
from ..engine import MappingEngine, MappingJob
from ..engine.cache import canonical_hash
from ..engine.jobs import JobResult
from .grid import ScenarioGrid
from .pareto import pareto_indices
from .scenarios import ScenarioPoint

__all__ = ["ExplorePointResult", "ExploreResult", "DesignSpaceExplorer"]


@dataclass
class ExplorePointResult:
    """Outcome of one scenario point of an exploration run."""

    label: str
    family: str
    params: Dict[str, Any]
    chain: int
    step: int
    status: str
    objective: Optional[float] = None
    wall_time: float = 0.0
    lp_solves: int = 0
    nodes_explored: int = 0
    simplex_iterations: int = 0
    warm_lp_solves: int = 0
    basis_reuses: int = 0
    refactorizations: int = 0
    etas_applied: int = 0
    retries: int = 0
    fingerprint: Optional[str] = None
    cache_hit: bool = False
    error: str = ""
    solve_stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "family": self.family,
            "params": dict(self.params),
            "chain": self.chain,
            "step": self.step,
            "status": self.status,
            "objective": self.objective,
            "wall_time": self.wall_time,
            "lp_solves": self.lp_solves,
            "nodes_explored": self.nodes_explored,
            "simplex_iterations": self.simplex_iterations,
            "warm_lp_solves": self.warm_lp_solves,
            "basis_reuses": self.basis_reuses,
            "refactorizations": self.refactorizations,
            "etas_applied": self.etas_applied,
            "retries": self.retries,
            "fingerprint": self.fingerprint,
            "cache_hit": self.cache_hit,
            "error": self.error,
            "solve_stats": dict(self.solve_stats),
        }


@dataclass
class ExploreResult:
    """Everything one exploration run produced."""

    grid: ScenarioGrid
    points: List[ExplorePointResult]
    chains: List[List[str]]
    jobs: int
    solver: str
    warm_chain: bool
    elapsed: float
    cache_stats: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------- reductions
    @property
    def ok_points(self) -> List[ExplorePointResult]:
        return [point for point in self.points if point.ok]

    @property
    def num_failed(self) -> int:
        return len(self.points) - len(self.ok_points)

    def total(self, attribute: str) -> float:
        return sum(getattr(point, attribute) for point in self.points)

    def pareto_front(self) -> List[ExplorePointResult]:
        """Non-dominated points over (objective, LP solves) — deterministic."""
        candidates = self.ok_points
        vectors = [(p.objective, float(p.lp_solves)) for p in candidates]
        return [candidates[i] for i in pareto_indices(vectors)]

    def pareto_front_timed(self) -> List[ExplorePointResult]:
        """Front over (objective, LP solves, wall time).

        Wall time is machine- and load-dependent, so this front is
        reported for human consumption but kept out of the run
        fingerprint.
        """
        candidates = self.ok_points
        vectors = [(p.objective, float(p.lp_solves), p.wall_time) for p in candidates]
        return [candidates[i] for i in pareto_indices(vectors)]

    def fingerprint(self) -> str:
        """Deterministic content hash of the exploration outcome.

        Covers the grid, the solver, per-point mappings and solver-work
        counts, and the deterministic Pareto front; excludes wall times
        and cache incidentals.  Equal fingerprints mean the run explored
        the same space and found the same mappings with the same effort.
        """
        document = {
            "kind": "explore_fingerprint",
            "grid": self.grid.to_dict(),
            "solver": self.solver,
            "warm_chain": self.warm_chain,
            "points": [
                {
                    "label": point.label,
                    "status": point.status,
                    "fingerprint": point.fingerprint,
                    "objective": point.objective,
                    "lp_solves": point.lp_solves,
                }
                for point in self.points
            ],
            "pareto_front": [point.label for point in self.pareto_front()],
        }
        return canonical_hash(document)


class DesignSpaceExplorer:
    """Runs a scenario grid through the engine and reduces the results.

    Parameters
    ----------
    grid:
        The scenario grid to explore (one warm chain per sweep).
    jobs:
        Worker processes; chains run concurrently, points within a chain
        sequentially (they feed each other's warm starts).
    solver:
        ILP backend *name*.  Defaults to ``"auto"`` (the built-in
        branch-and-bound) rather than ``scipy-milp`` because warm
        chaining needs a context-capable backend.
    weights:
        Objective weights shared by every point.
    warm_chain:
        Chain each point's solve state into the next point of its sweep
        (default).  ``False`` solves every point cold.
    seed:
        Base seed for the scenario builders.
    time_limit:
        Per-point wall-clock budget in seconds.
    cache_dir / retries:
        Forwarded to the :class:`~repro.engine.MappingEngine`.
    """

    def __init__(
        self,
        grid: ScenarioGrid,
        jobs: int = 1,
        solver: str = "auto",
        weights: Optional[CostWeights] = None,
        warm_chain: bool = True,
        seed: int = 0,
        time_limit: Optional[float] = None,
        cache_dir: Optional[str] = None,
        retries: int = 0,
    ) -> None:
        self.grid = grid
        self.jobs = max(1, int(jobs))
        self.solver = solver
        self.weights = weights or CostWeights()
        self.warm_chain = warm_chain
        self.seed = seed
        self.time_limit = time_limit
        self.cache_dir = cache_dir
        self.retries = retries

    # ------------------------------------------------------------------ api
    def run(self) -> ExploreResult:
        chains = self.grid.chains(seed=self.seed)
        labels = self._unique_labels(chains)
        engine = MappingEngine(
            jobs=self.jobs,
            cache_dir=self.cache_dir,
            retries=self.retries,
            timeout=self.time_limit,
        )

        start = time.perf_counter()
        contexts: List[Optional[Dict[str, Any]]] = [None] * len(chains)
        records: Dict[Tuple[int, int], ExplorePointResult] = {}
        depth = max(len(chain) for chain in chains)
        # One worker pool for the whole run: a wavefront issues one small
        # batch per step, which would otherwise respawn workers each time.
        with engine.persistent_pool():
            for step in range(depth):
                wave = [
                    (index, chain[step])
                    for index, chain in enumerate(chains)
                    if step < len(chain)
                ]
                batch = [
                    self._job(point, labels[index][step], contexts[index])
                    for index, point in wave
                ]
                results = engine.run(batch)
                for (index, point), result in zip(wave, results):
                    records[(index, step)] = self._record(
                        point, index, step, result
                    )
                    if self.warm_chain and result.chain_context is not None:
                        contexts[index] = result.chain_context
        elapsed = time.perf_counter() - start

        points = [
            records[(index, step)]
            for index, chain in enumerate(chains)
            for step in range(len(chain))
        ]
        return ExploreResult(
            grid=self.grid,
            points=points,
            chains=labels,
            jobs=self.jobs,
            solver=self.solver,
            warm_chain=self.warm_chain,
            elapsed=elapsed,
            cache_stats=(
                dict(engine.cache.stats()) if engine.cache is not None else None
            ),
        )

    # ------------------------------------------------------------- internals
    def _unique_labels(self, chains: List[List[ScenarioPoint]]) -> List[List[str]]:
        """Per-chain point labels, deduplicated deterministically."""
        seen: Dict[str, int] = {}
        labels: List[List[str]] = []
        for chain in chains:
            row: List[str] = []
            for point in chain:
                label = point.label()
                count = seen.get(label, 0)
                seen[label] = count + 1
                row.append(label if count == 0 else f"{label}#{count + 1}")
            labels.append(row)
        return labels

    def _job(
        self,
        point: ScenarioPoint,
        label: str,
        context: Optional[Dict[str, Any]],
    ) -> MappingJob:
        design, board = point.build()
        return MappingJob(
            board=board,
            design=design,
            weights=self.weights,
            solver=self.solver,
            label=label,
            timeout=self.time_limit,
            chain_context=context if self.warm_chain else None,
            export_context=self.warm_chain,
        )

    def _record(
        self,
        point: ScenarioPoint,
        chain: int,
        step: int,
        result: JobResult,
    ) -> ExplorePointResult:
        stats = result.solve_stats
        return ExplorePointResult(
            label=result.label,
            family=point.family,
            params=point.resolved_params(),
            chain=chain,
            step=step,
            status=result.status,
            objective=result.objective,
            wall_time=result.wall_time,
            lp_solves=int(stats.get("lp_solves", 0) or 0),
            nodes_explored=int(stats.get("nodes_explored", 0) or 0),
            simplex_iterations=int(stats.get("simplex_iterations", 0) or 0),
            warm_lp_solves=int(stats.get("warm_lp_solves", 0) or 0),
            basis_reuses=int(stats.get("basis_reuses", 0) or 0),
            refactorizations=int(stats.get("refactorizations", 0) or 0),
            etas_applied=int(stats.get("etas_applied", 0) or 0),
            retries=int(stats.get("retries", 0) or 0),
            fingerprint=result.fingerprint,
            cache_hit=result.cache_hit,
            error=result.error,
            solve_stats=dict(stats),
        )
