"""Result containers of the memory-access simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = ["StructureStats", "SimulationReport"]


@dataclass(frozen=True)
class StructureStats:
    """Per-data-structure simulation totals."""

    structure: str
    bank_type: str
    reads: int
    writes: int
    read_cycles: int
    write_cycles: int
    pin_cycles: int

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def total_cycles(self) -> int:
        return self.read_cycles + self.write_cycles + self.pin_cycles

    @property
    def average_latency(self) -> float:
        return self.total_cycles / self.accesses if self.accesses else 0.0


@dataclass(frozen=True)
class SimulationReport:
    """Aggregate outcome of replaying one trace against one mapping."""

    design_name: str
    board_name: str
    total_accesses: int
    total_cycles: int
    latency_cycles: int
    pin_cycles: int
    port_conflict_cycles: int
    per_structure: Tuple[StructureStats, ...] = ()
    per_type_cycles: Dict[str, int] = field(default_factory=dict)
    wall_clock_ns: float = 0.0

    @property
    def average_access_latency(self) -> float:
        return self.total_cycles / self.total_accesses if self.total_accesses else 0.0

    @property
    def offchip_fraction(self) -> float:
        """Fraction of cycles spent on off-chip (pin-traversing) accesses."""
        if self.total_cycles == 0:
            return 0.0
        return self.pin_cycles / self.total_cycles

    def describe(self) -> str:
        lines = [
            f"Simulation of {self.design_name!r} on {self.board_name!r}:",
            f"  accesses: {self.total_accesses}",
            f"  total cycles: {self.total_cycles}"
            f" (latency {self.latency_cycles}, pins {self.pin_cycles},"
            f" port conflicts {self.port_conflict_cycles})",
            f"  average access latency: {self.average_access_latency:.3f} cycles",
            f"  estimated wall clock: {self.wall_clock_ns / 1e3:.2f} us",
        ]
        for type_name, cycles in sorted(self.per_type_cycles.items()):
            lines.append(f"  {type_name}: {cycles} cycles")
        return "\n".join(lines)
