"""Synthetic memory-access trace generation.

The paper evaluates mapping quality analytically (the ILP objective), but
its motivation is the run-time behaviour of data-intensive designs.  To be
able to *measure* the effect of a mapping rather than only predict it, the
simulator package replays access traces against a detailed mapping.  Since
the paper's designs are not available, traces are generated synthetically
from the design description:

* every data structure receives ``effective_reads`` read accesses and
  ``effective_writes`` write accesses (the paper's one-read-one-write-per-
  word assumption by default, or the footprint counts when present),
* addresses follow either a sequential sweep (streaming kernels) or a
  seeded uniform-random pattern (lookup tables), and
* accesses of different structures are interleaved to mimic a pipelined
  datapath issuing one access per cycle per port.

Traces are stored as NumPy structured arrays so that the simulator can
process them with vectorised operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..design.design import Design

__all__ = ["AccessTrace", "TraceGenerator"]

#: dtype of one trace record: structure index, 0=read / 1=write, word address.
TRACE_DTYPE = np.dtype(
    [("structure", np.int32), ("is_write", np.int8), ("address", np.int64)]
)


@dataclass(frozen=True)
class AccessTrace:
    """An ordered sequence of memory accesses against a design's structures."""

    design_name: str
    structure_names: Tuple[str, ...]
    records: np.ndarray  # structured array with TRACE_DTYPE

    def __post_init__(self) -> None:
        if self.records.dtype != TRACE_DTYPE:
            raise ValueError("trace records must use TRACE_DTYPE")

    def __len__(self) -> int:
        return int(self.records.shape[0])

    @property
    def num_reads(self) -> int:
        return int(np.sum(self.records["is_write"] == 0))

    @property
    def num_writes(self) -> int:
        return int(np.sum(self.records["is_write"] == 1))

    def accesses_of(self, structure: str) -> np.ndarray:
        """All records touching ``structure`` (by name)."""
        index = self.structure_names.index(structure)
        return self.records[self.records["structure"] == index]

    def counts_per_structure(self) -> Dict[str, Tuple[int, int]]:
        """``name -> (reads, writes)`` totals of the trace."""
        result: Dict[str, Tuple[int, int]] = {}
        for index, name in enumerate(self.structure_names):
            mask = self.records["structure"] == index
            writes = int(np.sum(self.records["is_write"][mask]))
            result[name] = (int(np.sum(mask)) - writes, writes)
        return result


@dataclass
class TraceGenerator:
    """Reproducible access-trace generator for a design.

    Parameters
    ----------
    seed:
        RNG seed; identical seeds and parameters give identical traces.
    pattern:
        ``"sequential"`` sweeps every structure's addresses in order (the
        streaming behaviour of filters and convolutions); ``"random"`` draws
        uniform addresses (table lookups); ``"mixed"`` uses sequential
        addresses for writes and random ones for reads.
    interleave:
        When true (default) the per-structure access streams are interleaved
        round-robin, mimicking a pipelined datapath; otherwise structures
        are accessed one after the other.
    scale:
        Multiplier on the per-structure access counts (use < 1.0 to produce
        short smoke-test traces for large designs).
    """

    seed: int = 0
    pattern: str = "sequential"
    interleave: bool = True
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.pattern not in ("sequential", "random", "mixed"):
            raise ValueError(f"unknown access pattern {self.pattern!r}")
        if self.scale <= 0:
            raise ValueError("scale must be positive")

    def generate(self, design: Design) -> AccessTrace:
        """Build the trace for ``design``."""
        rng = np.random.default_rng(self.seed)
        names = design.segment_names
        streams: List[np.ndarray] = []
        for index, ds in enumerate(design.data_structures):
            reads = max(1, int(round(ds.effective_reads * self.scale)))
            writes = max(1, int(round(ds.effective_writes * self.scale)))
            total = reads + writes
            stream = np.zeros(total, dtype=TRACE_DTYPE)
            stream["structure"] = index
            # Writes first (producer), then reads (consumer), interleaved by
            # a stable shuffle so the two directions mix like a pipeline.
            stream["is_write"][:writes] = 1
            write_addr = self._addresses(rng, writes, ds.depth, for_write=True)
            read_addr = self._addresses(rng, reads, ds.depth, for_write=False)
            stream["address"][:writes] = write_addr
            stream["address"][writes:] = read_addr
            order = rng.permutation(total)
            streams.append(stream[order])

        if not self.interleave:
            records = np.concatenate(streams)
        else:
            records = self._round_robin(streams)
        return AccessTrace(design_name=design.name, structure_names=names,
                           records=records)

    # ------------------------------------------------------------ internals
    def _addresses(
        self, rng: np.random.Generator, count: int, depth: int, for_write: bool
    ) -> np.ndarray:
        if self.pattern == "sequential" or (self.pattern == "mixed" and for_write):
            return np.arange(count, dtype=np.int64) % depth
        return rng.integers(0, depth, size=count, dtype=np.int64)

    @staticmethod
    def _round_robin(streams: Sequence[np.ndarray]) -> np.ndarray:
        """Interleave streams round-robin without Python-level per-record loops."""
        total = sum(len(s) for s in streams)
        result = np.zeros(total, dtype=TRACE_DTYPE)
        # Assign each record a (position within stream, stream index) sort key;
        # sorting by that key realises the round-robin order vectorised.
        keys = np.concatenate(
            [
                np.arange(len(stream), dtype=np.int64) * len(streams) + stream_index
                for stream_index, stream in enumerate(streams)
            ]
        )
        merged = np.concatenate(streams)
        order = np.argsort(keys, kind="stable")
        result[:] = merged[order]
        return result
