"""Cycle-cost simulation of a detailed mapping under an access trace.

The simulator replays an :class:`~repro.sim.trace.AccessTrace` against a
mapped design and charges every access:

* the read or write latency of the bank type holding the accessed word,
* one cycle per pin traversed between the processing unit and the bank
  (the paper's proximity model: on-chip banks add nothing, directly
  attached SRAM adds two, indirect banks more), and
* a serialization penalty when consecutive accesses contend for the same
  physical port (two structures never share a port — the paper forbids
  arbitration — but one structure's own accesses are serialised on the
  port(s) its fragments own).

The totals decompose exactly along the cost components of the ILP
objective, which is what lets the test-suite and the quality benchmark
confirm the paper's claim that detailed mapping cannot change the cost
fixed by global mapping: two detailed mappings derived from the same
global assignment simulate to identical latency and pin totals.

Everything is vectorised with NumPy; the per-access work is a handful of
fancy-indexing operations over the whole trace.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import numpy as np

from ..arch.board import Board
from ..core.mapping import DetailedMapping, GlobalMapping, MappingResult
from ..design.design import Design
from .metrics import SimulationReport, StructureStats
from .trace import AccessTrace, TraceGenerator

__all__ = ["MemorySimulator", "simulate_mapping"]


class MemorySimulator:
    """Replays traces against a mapping and reports cycle costs.

    Parameters
    ----------
    board:
        The architecture; supplies latencies, pin distances and clock period.
    pin_cycle_penalty:
        Cycles charged per pin traversed (default 1, the paper's
        inverse-proportionality assumption reduced to its simplest form).
    """

    def __init__(self, board: Board, pin_cycle_penalty: int = 1) -> None:
        if pin_cycle_penalty < 0:
            raise ValueError("pin_cycle_penalty must be non-negative")
        self.board = board
        self.pin_cycle_penalty = pin_cycle_penalty

    # ------------------------------------------------------------------ api
    def simulate(
        self,
        design: Design,
        global_mapping: GlobalMapping,
        trace: Optional[AccessTrace] = None,
        detailed: Optional[DetailedMapping] = None,
        trace_seed: int = 0,
        trace_scale: float = 1.0,
    ) -> SimulationReport:
        """Simulate ``trace`` (generated when omitted) against a mapping."""
        start = time.perf_counter()
        if trace is None:
            trace = TraceGenerator(seed=trace_seed, scale=trace_scale).generate(design)

        # Per-structure bank-type properties, gathered into arrays indexed by
        # the trace's structure indices.
        num_structures = len(trace.structure_names)
        read_latency = np.zeros(num_structures, dtype=np.int64)
        write_latency = np.zeros(num_structures, dtype=np.int64)
        pins = np.zeros(num_structures, dtype=np.int64)
        type_of: List[str] = []
        for index, name in enumerate(trace.structure_names):
            type_name = global_mapping.type_of(name)
            bank = self.board.type_by_name(type_name)
            read_latency[index] = bank.read_latency
            write_latency[index] = bank.write_latency
            pins[index] = bank.pins_traversed
            type_of.append(type_name)

        records = trace.records
        struct_idx = records["structure"].astype(np.int64)
        is_write = records["is_write"].astype(bool)

        latency_cycles = np.where(
            is_write, write_latency[struct_idx], read_latency[struct_idx]
        )
        pin_cycles = pins[struct_idx] * self.pin_cycle_penalty

        port_conflict_cycles = self._port_conflicts(
            trace, global_mapping, detailed, struct_idx
        )

        total_latency = int(latency_cycles.sum())
        total_pins = int(pin_cycles.sum())
        total_conflicts = int(port_conflict_cycles)
        total_cycles = total_latency + total_pins + total_conflicts

        per_structure: List[StructureStats] = []
        per_type: Dict[str, int] = {}
        for index, name in enumerate(trace.structure_names):
            mask = struct_idx == index
            writes_mask = mask & is_write
            reads_mask = mask & ~is_write
            stats = StructureStats(
                structure=name,
                bank_type=type_of[index],
                reads=int(reads_mask.sum()),
                writes=int(writes_mask.sum()),
                read_cycles=int(latency_cycles[reads_mask].sum()),
                write_cycles=int(latency_cycles[writes_mask].sum()),
                pin_cycles=int(pin_cycles[mask].sum()),
            )
            per_structure.append(stats)
            per_type[type_of[index]] = per_type.get(type_of[index], 0) + stats.total_cycles

        del start  # wall-clock of the simulator itself is not part of the report
        return SimulationReport(
            design_name=design.name,
            board_name=self.board.name,
            total_accesses=len(trace),
            total_cycles=total_cycles,
            latency_cycles=total_latency,
            pin_cycles=total_pins,
            port_conflict_cycles=total_conflicts,
            per_structure=tuple(per_structure),
            per_type_cycles=per_type,
            wall_clock_ns=total_cycles * self.board.clock_ns,
        )

    # ------------------------------------------------------------ internals
    def _port_conflicts(
        self,
        trace: AccessTrace,
        global_mapping: GlobalMapping,
        detailed: Optional[DetailedMapping],
        struct_idx: np.ndarray,
    ) -> int:
        """Serialisation penalty from structures owning fewer ports than needed.

        Without a detailed mapping the penalty is zero (the global stage
        reserves enough ports by construction).  With one, a structure whose
        fragments all sit behind a single port can only issue one access per
        cycle; back-to-back accesses to such a structure cost one extra
        cycle each beyond the first of a run, which is what a pipelined
        datapath would observe.
        """
        if detailed is None:
            return 0
        single_ported = np.zeros(len(trace.structure_names), dtype=bool)
        for index, name in enumerate(trace.structure_names):
            fragments = detailed.fragments_of(name)
            if not fragments:
                continue
            distinct_ports = {
                (placement.bank_type, placement.instance, port)
                for placement in fragments
                for port in placement.ports
            }
            single_ported[index] = len(distinct_ports) <= 1
        if not single_ported.any():
            return 0
        # A "run" is a maximal stretch of consecutive trace records hitting
        # the same single-ported structure; each run of length L costs L - 1
        # extra cycles.
        hits = single_ported[struct_idx]
        same_as_prev = np.empty(len(struct_idx), dtype=bool)
        same_as_prev[0] = False
        same_as_prev[1:] = struct_idx[1:] == struct_idx[:-1]
        return int(np.sum(hits & same_as_prev))


def simulate_mapping(
    result: MappingResult,
    trace: Optional[AccessTrace] = None,
    trace_seed: int = 0,
    trace_scale: float = 1.0,
    pin_cycle_penalty: int = 1,
) -> SimulationReport:
    """Convenience wrapper: simulate a :class:`MappingResult` end to end."""
    simulator = MemorySimulator(result.board, pin_cycle_penalty=pin_cycle_penalty)
    return simulator.simulate(
        result.design,
        result.global_mapping,
        trace=trace,
        detailed=result.detailed_mapping,
        trace_seed=trace_seed,
        trace_scale=trace_scale,
    )
