"""Memory-access simulation substrate.

The paper evaluates mappings analytically; this package adds a small
trace-driven simulator so that mapping quality can also be *measured*:
synthetic access traces (:class:`TraceGenerator`) are replayed against a
mapping (:class:`MemorySimulator`) and charged latency, pin-traversal and
port-serialisation cycles.  The totals decompose along the same components
as the ILP objective, which the tests and the quality benchmark exploit.
"""

from .metrics import SimulationReport, StructureStats
from .simulator import MemorySimulator, simulate_mapping
from .trace import TRACE_DTYPE, AccessTrace, TraceGenerator

__all__ = [
    "AccessTrace",
    "TraceGenerator",
    "TRACE_DTYPE",
    "MemorySimulator",
    "simulate_mapping",
    "SimulationReport",
    "StructureStats",
]
