"""Job and result records of the parallel mapping engine.

A :class:`MappingJob` is one unit of work — "map this design onto this
board with these weights and this solver" — expressed entirely in terms of
the versioned JSON schema of :mod:`repro.io.serialize`, so jobs cross
process boundaries as plain dictionaries and their cache keys are content
hashes of exactly what a worker will execute.

A :class:`JobResult` is the structured outcome the engine hands back (and
what ``repro batch --json`` emits): a coarse status, the objective and
assignment, the full mapping-result document, a determinism fingerprint,
and execution metadata (wall time, attempts, cache hit, worker pid).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from ..arch.board import Board
from ..core.objective import CostWeights
from ..design.design import Design
from ..io.serialize import SCHEMA_VERSION, board_to_dict, design_to_dict
from .cache import canonical_hash

__all__ = ["MappingJob", "JobResult", "payload_cache_key",
           "WARM_IDENTITY_KEYS", "warm_state_key",
           "STATUS_OK", "STATUS_FAILED", "STATUS_ERROR", "STATUS_TIMEOUT",
           "MODE_PIPELINE", "MODE_COMPLETE", "MODE_FAST"]

#: Job completed with a valid mapping.
STATUS_OK = "ok"
#: The mapping flow failed deterministically (infeasible model, solver
#: reported failure); retrying cannot help.
STATUS_FAILED = "failed"
#: The job raised an unexpected exception (worker crash, bug) even after
#: the configured retries.
STATUS_ERROR = "error"
#: The job exceeded its wall-clock budget.
STATUS_TIMEOUT = "timeout"

#: Three pipeline flavours the engine can execute: the paper's two-stage
#: global/detailed flow, the flat single-ILP formulation it compares
#: against (used by the Table 3 harness), and the two-stage flow in fast
#: mode (heuristic-first, bound-certified within ``gap_limit``).
MODE_PIPELINE = "pipeline"
MODE_COMPLETE = "complete"
MODE_FAST = "fast"


def _weights_to_dict(weights: CostWeights) -> Dict[str, Any]:
    return {
        "latency": weights.latency,
        "pin_delay": weights.pin_delay,
        "pin_io": weights.pin_io,
        "normalize": weights.normalize,
    }


@dataclass(frozen=True)
class MappingJob:
    """One (board, design, weights) mapping request for the engine."""

    board: Board
    design: Design
    weights: CostWeights = field(default_factory=CostWeights)
    #: Solver backend *name* (registry of :mod:`repro.ilp.backends`); the
    #: engine refuses instances because jobs must serialise across
    #: processes.
    solver: str = "auto"
    solver_options: Mapping[str, Any] = field(default_factory=dict)
    capacity_mode: str = "strict"
    port_estimation: str = "paper"
    #: Seed the ILP incumbent with the greedy heuristic (pipeline mode).
    warm_start: bool = True
    #: Thread a SolveContext through the pipeline's retry loop so retry N
    #: warm-starts from retry N-1 (pipeline mode).
    warm_retries: bool = True
    mode: str = MODE_PIPELINE
    #: Relative optimality-gap contract of fast-mode jobs (``None`` uses
    #: the pipeline default, 0.05).  Part of the cache key: the same
    #: design under a looser contract may legitimately return a different
    #: (cheaper-to-find) mapping.
    gap_limit: Optional[float] = None
    #: Display / artifact label; not part of the cache key.
    label: str = ""
    #: Per-job wall-clock budget in seconds (cooperative: it tightens the
    #: solver's time limit and bounds the engine's wait on the worker).
    timeout: Optional[float] = None
    #: Chained solve state from an adjacent design point — the
    #: :meth:`repro.ilp.SolveContext.chain_dict` of the previous job in a
    #: warm-chained sweep (pipeline mode).  Part of the cache key: a
    #: chained run and a cold run of the same point are different work.
    chain_context: Optional[Mapping[str, Any]] = None
    #: Ship the job's final chain context back in the result so the next
    #: point of a sweep can be chained onto it (pipeline mode; implied
    #: when ``chain_context`` is set).
    export_context: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.solver, str):
            raise TypeError(
                "MappingJob.solver must be a backend name (jobs are shipped "
                "to worker processes; pass the registry name, not an instance)"
            )
        if self.mode not in (MODE_PIPELINE, MODE_COMPLETE, MODE_FAST):
            raise ValueError(f"unknown job mode {self.mode!r}")
        if self.gap_limit is not None and self.gap_limit < 0:
            raise ValueError("gap_limit must be non-negative")

    def display_label(self) -> str:
        return self.label or f"{self.design.name}@{self.board.name}"

    def to_payload(self) -> Dict[str, Any]:
        """Self-contained, picklable work order for a worker process."""
        return {
            "schema_version": SCHEMA_VERSION,
            "board": board_to_dict(self.board),
            "design": design_to_dict(self.design),
            "weights": _weights_to_dict(self.weights),
            "solver": self.solver,
            "solver_options": dict(self.solver_options),
            "capacity_mode": self.capacity_mode,
            "port_estimation": self.port_estimation,
            "warm_start": self.warm_start,
            "warm_retries": self.warm_retries,
            "mode": self.mode,
            "gap_limit": self.gap_limit,
            "timeout": self.timeout,
            "chain_context": (
                None if self.chain_context is None else dict(self.chain_context)
            ),
            "export_context": bool(self.export_context),
        }

    def cache_key(self) -> str:
        """Content hash of everything that determines the job's result.

        The label is excluded (pure presentation).  The timeout is *not*:
        it tightens the solver's time limit at execution, so a run censored
        by a 1-second budget may carry a suboptimal incumbent that must
        never be served to a rerun with a larger budget.
        """
        return payload_cache_key(self.to_payload())

    def warm_state_key(self) -> str:
        """Warm-identity hash of the job (see :func:`warm_state_key`)."""
        return warm_state_key(self.to_payload())


def payload_cache_key(payload: Mapping[str, Any]) -> str:
    """Cache key of an executable payload (the engine hashes the payload it
    actually ships, after applying its own default timeout)."""
    return canonical_hash(payload)


#: Payload fields that define a job's *warm identity*: what must match for
#: one job's exported solve state to be a sound seed for another.  Mode,
#: gap contract, timeout and chaining are deliberately excluded — they
#: change how hard the solver works, not which problem it solves.
WARM_IDENTITY_KEYS = (
    "board",
    "design",
    "weights",
    "solver",
    "solver_options",
    "capacity_mode",
    "port_estimation",
    "warm_start",
    "warm_retries",
)


def warm_state_key(payload: Mapping[str, Any]) -> str:
    """Warm-state key of an executable payload (see ``WARM_IDENTITY_KEYS``).

    This is the exact-identity key of the serve tier's shared
    :class:`~repro.serve.store.WarmStateStore`; it lives next to
    :func:`payload_cache_key` because the two keys must stay derived from
    the same payload the engine actually executes.
    """
    identity: Dict[str, Any] = {
        key: payload.get(key) for key in WARM_IDENTITY_KEYS
    }
    identity["kind"] = "warm_state"
    return canonical_hash(identity)


@dataclass
class JobResult:
    """Structured outcome of one engine job."""

    index: int
    label: str
    status: str
    objective: Optional[float] = None
    solver_status: str = ""
    #: ``structure name -> bank type name`` of the global stage.
    assignment: Dict[str, str] = field(default_factory=dict)
    #: Full mapping-result document (:func:`repro.io.mapping_result_to_dict`)
    #: for pipeline jobs; a reduced document for complete-formulation jobs.
    result: Optional[Dict[str, Any]] = None
    #: Hash of ``result`` with timing fields stripped; equal fingerprints
    #: mean byte-identical mappings regardless of worker count.
    fingerprint: Optional[str] = None
    model_size: Dict[str, int] = field(default_factory=dict)
    #: aggregated solver statistics of the job's mapping flow (LP solves,
    #: nodes, presolve reductions); excluded from the fingerprint.
    solve_stats: Dict[str, Any] = field(default_factory=dict)
    #: the job's final chain context (when it was asked to export one);
    #: what the next design point of a warm-chained sweep consumes.
    #: Excluded from the fingerprint, like the other solver-effort state.
    chain_context: Optional[Dict[str, Any]] = None
    error: str = ""
    wall_time: float = 0.0
    attempts: int = 1
    cache_hit: bool = False
    #: This job shared a batch with an identical sibling (same cache key)
    #: and was answered from the sibling's solve instead of its own.
    deduped: bool = False
    worker_pid: int = 0
    cache_key: str = ""

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "job_result",
            "schema_version": SCHEMA_VERSION,
            "index": self.index,
            "label": self.label,
            "status": self.status,
            "objective": self.objective,
            "solver_status": self.solver_status,
            "assignment": dict(self.assignment),
            "result": self.result,
            "fingerprint": self.fingerprint,
            "model_size": dict(self.model_size),
            "solve_stats": dict(self.solve_stats),
            "chain_context": self.chain_context,
            "error": self.error,
            "wall_time": self.wall_time,
            "attempts": self.attempts,
            "cache_hit": self.cache_hit,
            "deduped": self.deduped,
            "worker_pid": self.worker_pid,
            "cache_key": self.cache_key,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobResult":
        return cls(
            index=int(data.get("index", 0)),
            label=data.get("label", ""),
            status=data.get("status", STATUS_ERROR),
            objective=data.get("objective"),
            solver_status=data.get("solver_status", ""),
            assignment=dict(data.get("assignment", {})),
            result=data.get("result"),
            fingerprint=data.get("fingerprint"),
            model_size=dict(data.get("model_size", {})),
            solve_stats=dict(data.get("solve_stats") or {}),
            chain_context=data.get("chain_context"),
            error=data.get("error", ""),
            wall_time=float(data.get("wall_time", 0.0)),
            attempts=int(data.get("attempts", 1)),
            cache_hit=bool(data.get("cache_hit", False)),
            deduped=bool(data.get("deduped", False)),
            worker_pid=int(data.get("worker_pid", 0)),
            cache_key=data.get("cache_key", ""),
        )
