"""Canonical hashing and the on-disk result cache of the mapping engine.

Cache keys are content hashes of the *inputs* of a mapping job — the
serialised board and design (via :mod:`repro.io.serialize`), the objective
weights, the solver backend and its options — so any process that builds
the same job computes the same key.  Canonicalisation is plain JSON with
sorted keys and fixed separators; no pickle, no interning, no per-process
salt, which is what makes the keys stable across interpreter runs (the
test suite pins this by hashing in a subprocess).

The cache itself is a flat directory of ``<key>.json`` files holding
serialised :class:`repro.engine.jobs.JobResult` documents.  Writes go
through a temporary file plus :func:`os.replace` so concurrent engine
workers can never observe a half-written entry.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterable, Mapping, Optional, Union

__all__ = [
    "canonical_json",
    "canonical_hash",
    "result_fingerprint",
    "ResultCache",
]

#: Bump when the cached document layout changes incompatibly; old entries
#: then simply miss instead of being misread.
CACHE_SCHEMA_VERSION = 1

#: How many bounded-cache puts may rely on the incremental entry counter
#: before it is re-derived from the directory (multi-writer drift bound).
_RESYNC_PUTS = 256

#: Keys stripped (recursively) before fingerprinting a result document.
#: Everything timing- or machine-dependent lives under these names, so two
#: runs of the same job — serial or parallel, any worker count — produce
#: the same fingerprint exactly when they produce the same mapping.
_NONDETERMINISTIC_KEYS = frozenset(
    {"global_time", "detailed_time", "solve_time", "wall_time", "solver_stats",
     # solver work counters vary with warm starts and worker scheduling
     # while the mapping itself stays identical.
     "solve_stats"}
)


def canonical_json(document: Any) -> str:
    """Serialise ``document`` to a canonical JSON string (sorted, compact)."""
    return json.dumps(
        document, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def canonical_hash(document: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``document``."""
    return hashlib.sha256(canonical_json(document).encode("ascii")).hexdigest()


def _strip_nondeterministic(value: Any) -> Any:
    if isinstance(value, Mapping):
        return {
            k: _strip_nondeterministic(v)
            for k, v in value.items()
            if k not in _NONDETERMINISTIC_KEYS
        }
    if isinstance(value, (list, tuple)):
        return [_strip_nondeterministic(v) for v in value]
    return value


def result_fingerprint(document: Optional[Mapping[str, Any]]) -> Optional[str]:
    """Deterministic hash of a result document, ignoring timing fields.

    Two mapping runs get the same fingerprint iff they produced the same
    assignment, placement and cost — regardless of how long any solver
    took or which worker executed them.  The batch CLI and the engine
    tests use this to assert that parallel execution is bit-for-bit
    equivalent to serial execution.
    """
    if document is None:
        return None
    return canonical_hash(_strip_nondeterministic(document))


class ResultCache:
    """Directory-backed store of finished job results, keyed by input hash.

    With ``max_entries`` set the cache is bounded: every write trims the
    directory back to the newest ``max_entries`` files (by modification
    time), so a long-lived service can cache forever without growing an
    unbounded result directory.  Unbounded (the default) preserves the
    historical sweep-cache behaviour.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        max_entries: Optional[int] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None for unbounded)")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Approximate entry count, maintained incrementally so the
        #: bounded-cache hot path does not scan the directory on every
        #: put; ``trim`` re-derives the exact number when it runs.  The
        #: counter only sees *this* process's writes, so with several
        #: writers sharing the directory (serve replicas) it drifts low;
        #: every :data:`_RESYNC_PUTS` puts it is re-derived from the
        #: directory so a bounded cache still trims under multi-process
        #: load.
        self._approx_entries: Optional[int] = None
        self._puts_since_resync = 0

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the cached document for ``key`` or ``None`` on a miss.

        A corrupt entry — truncated write, non-JSON bytes, JSON of the
        wrong shape, or an unreadable file — is treated as a plain miss,
        never an error: the caller simply re-executes the job and the next
        ``put`` overwrites the bad file.
        """
        path = self.path_for(key)
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self.misses += 1
            return None
        if (
            not isinstance(document, dict)
            or document.get("cache_schema_version") != CACHE_SCHEMA_VERSION
            or not isinstance(document.get("result"), dict)
        ):
            self.misses += 1
            return None
        self.hits += 1
        return document["result"]

    def put(self, key: str, document: Mapping[str, Any]) -> Path:
        """Store ``document`` under ``key`` atomically."""
        payload = {
            "cache_schema_version": CACHE_SCHEMA_VERSION,
            "key": key,
            "result": dict(document),
        }
        path = self.path_for(key)
        try:
            fd, tmp_name = tempfile.mkstemp(
                dir=str(self.directory), prefix=".cache-", suffix=".tmp"
            )
        except FileNotFoundError:
            # Another process (a concurrent ``clear`` + rmdir, a test
            # fixture teardown) removed the directory between our mkdir
            # and this write; recreate and retry once.
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=str(self.directory), prefix=".cache-", suffix=".tmp"
            )
        is_new = not path.exists()
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        if is_new and self._approx_entries is not None:
            self._approx_entries += 1
        if self.max_entries is not None:
            self._puts_since_resync += 1
            if self._puts_since_resync >= _RESYNC_PUTS:
                self._puts_since_resync = 0
                self._approx_entries = None  # re-derive on the next check
        if self.max_entries is not None and self._entry_count() > self.max_entries:
            # Directory scans are O(entries): only trim when the running
            # count says the bound was actually crossed.
            self.trim(self.max_entries)
        return path

    def _entry_count(self) -> int:
        """Entry count from the incremental counter (one scan to seed it)."""
        if self._approx_entries is None:
            self._approx_entries = len(self)
        return self._approx_entries

    def trim(self, max_entries: int) -> int:
        """Evict the oldest entries until at most ``max_entries`` remain.

        Age is modification time (a ``put`` refreshes it), oldest first
        with the file name as a deterministic tie-break.  Returns the
        number of entries removed; files deleted concurrently by another
        process are simply skipped.
        """
        entries = []
        for path in self.directory.glob("*.json"):
            try:
                entries.append((path.stat().st_mtime, path.name, path))
            except OSError:
                continue
        removed = 0
        if len(entries) <= max_entries:
            self._approx_entries = len(entries)
            return removed
        entries.sort()
        for _, _, path in entries[: len(entries) - max_entries]:
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
        self.evictions += removed
        self._approx_entries = len(entries) - removed
        return removed

    def keys(self) -> Iterable[str]:
        return sorted(p.stem for p in self.directory.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number of files removed.

        Entries unlinked concurrently by another process sharing the
        directory (a sibling replica's ``trim``, a parallel ``clear``)
        are skipped, not errors: the post-condition — no entries left —
        holds either way.
        """
        removed = 0
        for path in self.directory.glob("*.json"):
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
        self._approx_entries = 0
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    def stats(self) -> Dict[str, int]:
        # The entry count comes from the incremental counter, not a
        # directory glob: a long-lived server reports this on every
        # health poll and must not pay O(entries) for it.
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": self._entry_count(),
            "evictions": self.evictions,
        }
