"""Parallel batch-mapping engine: jobs, results, caching, execution.

The engine is the service layer over the paper's mapping flow: it accepts
batches of (board, design, weights) jobs, fans them out over worker
processes with deterministic result ordering, records structured
:class:`JobResult` outcomes, and memoizes finished work in an on-disk
cache keyed by a canonical content hash of each job's inputs.
"""

from .cache import ResultCache, canonical_hash, canonical_json, result_fingerprint
from .engine import MappingEngine, execute_payload
from .jobs import (
    MODE_COMPLETE,
    MODE_FAST,
    MODE_PIPELINE,
    STATUS_ERROR,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    JobResult,
    MappingJob,
    payload_cache_key,
    warm_state_key,
)

__all__ = [
    "MappingEngine",
    "MappingJob",
    "JobResult",
    "payload_cache_key",
    "warm_state_key",
    "execute_payload",
    "ResultCache",
    "canonical_hash",
    "canonical_json",
    "result_fingerprint",
    "STATUS_OK",
    "STATUS_FAILED",
    "STATUS_ERROR",
    "STATUS_TIMEOUT",
    "MODE_PIPELINE",
    "MODE_COMPLETE",
    "MODE_FAST",
]
