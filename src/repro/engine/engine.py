"""The parallel batch-mapping engine.

:class:`MappingEngine` turns a batch of :class:`~repro.engine.jobs.MappingJob`
requests into :class:`~repro.engine.jobs.JobResult` records, executing them

* **in-process** for ``jobs=1`` (no pool overhead, the historical serial
  behaviour), or
* across a ``ProcessPoolExecutor`` for ``jobs>1`` — each worker rebuilds
  the board/design from the job's serialised payload, runs the mapping
  flow and ships a plain-dict result back.

Guarantees the rest of the system builds on:

* **Deterministic ordering** — results come back in submission order, and
  each job's *fingerprint* (timing-stripped content hash) is identical no
  matter how many workers ran the batch, because every job executes the
  same single-job code path either way.
* **Structured failure** — a job that cannot map reports ``failed`` with
  the error message; an unexpected worker exception is retried up to
  ``retries`` times and then reported as ``error``; a job that exceeds its
  wall-clock budget reports ``timeout``.  One bad job never aborts the
  batch.
* **Result caching** — with a ``cache_dir``, finished jobs are stored under
  their canonical input hash (see :mod:`repro.engine.cache`) and a warm
  rerun of the same sweep is served from disk without touching a solver.

Timeouts are cooperative: the budget tightens the solver's own
``time_limit`` and bounds how long the engine waits on the future; a
worker stuck past the grace period is abandoned (its slot is not reused
for retries) rather than killed mid-write.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from concurrent.futures import (
    Future,
    ProcessPoolExecutor,
    TimeoutError as FutureTimeoutError,
)
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

from .cache import ResultCache, result_fingerprint
from .jobs import (
    MODE_COMPLETE,
    MODE_FAST,
    STATUS_ERROR,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    JobResult,
    MappingJob,
    payload_cache_key,
)

__all__ = ["MappingEngine", "execute_payload"]

#: Extra seconds granted on top of a job's cooperative timeout before the
#: engine stops waiting on its future (covers pool dispatch and model
#: build, which the solver's own limit does not).
_TIMEOUT_GRACE = 30.0

#: How many extra full budget windows a queued-but-never-started future may
#: wait for a pool slot before it is reported as timed out anyway.
_MAX_STARVATION_WAITS = 3


def execute_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one mapping job described by a serialised payload.

    Module-level so ``ProcessPoolExecutor`` can import it in workers; also
    called directly for in-process (serial) execution, which is what makes
    serial and parallel runs byte-identical.  Returns a result document;
    deterministic mapping failures are reported in-band as ``failed``
    documents, anything else propagates to the engine's retry logic.
    """
    from ..core.complete_mapper import CompleteMapper
    from ..core.mapping import MappingError
    from ..core.objective import CostWeights
    from ..core.pipeline import MemoryMapper
    from ..io.serialize import (
        board_from_dict,
        design_from_dict,
        global_mapping_to_dict,
        mapping_result_to_dict,
    )

    start = time.perf_counter()
    board = board_from_dict(payload["board"])
    design = design_from_dict(payload["design"])
    weights = CostWeights(**payload["weights"])
    solver_options = dict(payload.get("solver_options") or {})
    timeout = payload.get("timeout")
    if timeout is not None:
        limit = solver_options.get("time_limit")
        solver_options["time_limit"] = (
            float(timeout) if limit is None else min(float(limit), float(timeout))
        )

    document: Dict[str, Any] = {
        "status": STATUS_OK,
        "objective": None,
        "solver_status": "",
        "assignment": {},
        "result": None,
        "model_size": {},
        "solve_stats": {},
        "chain_context": None,
        "error": "",
        "worker_pid": os.getpid(),
    }
    # Warm-chained sweeps (repro.explore) thread name-keyed solve state from
    # one design point into the next; rebuild it here so the chained solve
    # and its export both happen inside the worker.
    context = None
    chain = payload.get("chain_context")
    if payload["mode"] != MODE_COMPLETE and (
        chain is not None or payload.get("export_context")
    ):
        from ..ilp import SolveContext

        context = (
            SolveContext.from_chain_dict(chain) if chain else SolveContext()
        )
    try:
        if payload["mode"] == MODE_COMPLETE:
            mapper = CompleteMapper(
                board,
                weights=weights,
                solver=payload["solver"],
                solver_options=solver_options,
            )
            outcome = mapper.solve(design)
            document["objective"] = outcome.global_mapping.objective
            document["solver_status"] = outcome.solver_status
            document["assignment"] = dict(outcome.global_mapping.assignment)
            document["result"] = global_mapping_to_dict(outcome.global_mapping)
            document["model_size"] = dict(outcome.model_size)
            document["solve_stats"] = dict(outcome.global_mapping.solver_stats)
        else:
            mapper = MemoryMapper(
                board,
                weights=weights,
                solver=payload["solver"],
                solver_options=solver_options,
                capacity_mode=payload.get("capacity_mode", "strict"),
                port_estimation=payload.get("port_estimation", "paper"),
                warm_start=bool(payload.get("warm_start", True)),
                warm_retries=bool(payload.get("warm_retries", True)),
                mode="fast" if payload["mode"] == MODE_FAST else "exact",
                gap_limit=payload.get("gap_limit"),
            )
            result = mapper.map(design, context=context)
            artifacts = mapper.global_mapper.build_model(design)
            document["objective"] = result.global_mapping.objective
            document["solver_status"] = result.global_mapping.solver_status
            document["assignment"] = dict(result.global_mapping.assignment)
            document["result"] = mapping_result_to_dict(result)
            document["model_size"] = {
                "variables": artifacts.model.num_variables,
                "constraints": artifacts.model.num_constraints,
            }
            document["solve_stats"] = dict(result.solve_stats)
    except MappingError as exc:
        document["status"] = STATUS_FAILED
        document["error"] = str(exc)

    if context is not None:
        # Exported even on failure: a failed point passes whatever state it
        # inherited (plus any successful intermediate solves) down the chain.
        document["chain_context"] = context.chain_dict()
    document["wall_time"] = time.perf_counter() - start
    document["fingerprint"] = result_fingerprint(document["result"])
    return document


class MappingEngine:
    """Executes batches of mapping jobs, optionally in parallel and cached.

    Parameters
    ----------
    jobs:
        Worker-process count; ``1`` (default) executes in-process.
    cache_dir:
        Directory of the on-disk result cache; ``None`` disables caching.
    retries:
        How many times an *unexpectedly* failing job (worker crash, bug)
        is re-executed before being reported as ``error``.  Deterministic
        mapping failures are never retried.
    timeout:
        Default per-job wall-clock budget in seconds, applied to jobs that
        do not carry their own.
    mp_context:
        Multiprocessing start-method name for the worker pool (``"fork"``,
        ``"spawn"``, ``"forkserver"``); ``None`` keeps the platform
        default.  The serving layer passes ``"spawn"`` because it runs the
        engine from a thread, where forking is deprecated (Python 3.12+)
        and unsafe.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[Union[str, os.PathLike]] = None,
        retries: int = 0,
        timeout: Optional[float] = None,
        mp_context: Optional[str] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if (
            mp_context is not None
            and mp_context not in multiprocessing.get_all_start_methods()
        ):
            raise ValueError(
                f"unknown mp_context {mp_context!r}; this platform supports "
                f"{', '.join(multiprocessing.get_all_start_methods())}"
            )
        self.jobs = jobs
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.retries = retries
        self.timeout = timeout
        self.mp_context = mp_context
        #: worker pool kept alive across run() calls between
        #: :meth:`start_persistent` and :meth:`stop_persistent`;
        #: ``None`` otherwise.
        self._persistent: Optional[ProcessPoolExecutor] = None
        self._persistent_active = False

    # ------------------------------------------------------------------ api
    def run(self, batch: Sequence[MappingJob]) -> List[JobResult]:
        """Execute ``batch`` and return one result per job, in job order.

        Identical jobs inside one batch (same cache key, i.e. identical
        shipped payload) are **coalesced**: one representative is solved
        and its result is replicated to the duplicates, which come back
        flagged ``deduped``.  The serving layer leans on this — a
        micro-batch of concurrent client requests often contains the same
        mapping more than once — and it is semantically invisible because
        equal payloads produce equal results by construction.
        """
        batch = list(batch)
        results: List[Optional[JobResult]] = [None] * len(batch)
        pending: List[int] = []
        duplicates: Dict[int, int] = {}
        first_for_key: Dict[str, int] = {}

        payloads: List[Dict[str, Any]] = []
        keys: List[str] = []
        for index, job in enumerate(batch):
            payload = job.to_payload()
            if payload.get("timeout") is None:
                payload["timeout"] = self.timeout
            payloads.append(payload)
            # Hash the payload actually shipped (including the effective
            # timeout): a budget-censored result must not alias the key of
            # an unbounded run of the same job.
            key = payload_cache_key(payload)
            keys.append(key)
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                result = self._to_result(index, batch[index], key, cached)
                result.cache_hit = True
                results[index] = result
            elif key in first_for_key:
                duplicates[index] = first_for_key[key]
            else:
                first_for_key[key] = index
                pending.append(index)

        if len(pending) <= 1 or self.jobs == 1:
            for index in pending:
                document = self._execute_with_retries(payloads[index])
                results[index] = self._record(index, batch, keys, document)
        else:
            self._run_pool(batch, payloads, keys, pending, results)

        for index, primary in duplicates.items():
            results[index] = self._replicate(index, batch[index], results[primary])

        return [result for result in results if result is not None]

    def start_persistent(self) -> None:
        """Keep one worker pool alive across subsequent ``run()`` calls.

        The pool is created lazily by the first parallel ``run()`` and
        torn down by :meth:`stop_persistent`.  Long-lived callers (the
        serving layer) use this imperative form; block-scoped callers use
        :meth:`persistent_pool`.
        """
        self._persistent_active = True

    def stop_persistent(self) -> None:
        """Tear down the persistent worker pool (no-op when none is up)."""
        self._persistent_active = False
        if self._persistent is not None:
            self._persistent.shutdown(wait=True)
            self._persistent = None

    @contextmanager
    def persistent_pool(self) -> Iterator["MappingEngine"]:
        """Reuse one worker pool across every ``run()`` call in the block.

        Wavefront callers (the explore subsystem runs one small batch per
        sweep step) would otherwise pay worker spawn + import costs on
        every step.  Outside the block behaviour is unchanged: each
        ``run()`` creates and tears down its own pool.  A pool abandoned
        because of a stuck worker is dropped and replaced on the next
        ``run()``.
        """
        self.start_persistent()
        try:
            yield self
        finally:
            self.stop_persistent()

    def map_result(self, result: JobResult):
        """Rehydrate a pipeline job's full :class:`MappingResult`."""
        from ..io.serialize import mapping_result_from_dict

        if result.result is None or result.result.get("kind") != "mapping_result":
            raise ValueError(
                f"job {result.label!r} carries no mapping_result document"
            )
        return mapping_result_from_dict(result.result)

    # ------------------------------------------------------------- internals
    def _run_pool(
        self,
        batch: Sequence[MappingJob],
        payloads: List[Dict[str, Any]],
        keys: List[str],
        pending: List[int],
        results: List[Optional[JobResult]],
    ) -> None:
        attempts = {index: 1 for index in pending}
        if self._persistent_active:
            # Sized to the engine, not this batch: later waves may be wider.
            if self._persistent is None:
                self._persistent = self._make_pool(self.jobs)
            executor = self._persistent
        else:
            executor = self._make_pool(min(self.jobs, len(pending)))
        abandoned = False
        try:
            futures: Dict[int, Future] = {
                index: executor.submit(execute_payload, payloads[index])
                for index in pending
            }
            # Collect in submission order: determinism costs nothing here
            # because every future must finish before run() returns anyway.
            for index in pending:
                starvation_waits = 0
                while True:
                    budget = payloads[index].get("timeout")
                    wait = None if budget is None else float(budget) + _TIMEOUT_GRACE
                    try:
                        document = futures[index].result(timeout=wait)
                    except FutureTimeoutError:
                        # A queued future never started running: it was
                        # starved behind a slow sibling, not stuck — give it
                        # more windows (bounded, in case the whole pool is
                        # wedged) instead of a false timeout verdict.
                        if (
                            not futures[index].running()
                            and not futures[index].done()
                            and starvation_waits < _MAX_STARVATION_WAITS
                        ):
                            starvation_waits += 1
                            continue
                        results[index] = JobResult(
                            index=index,
                            label=batch[index].display_label(),
                            status=STATUS_TIMEOUT,
                            error=f"job exceeded its {budget:.0f}s budget "
                                  f"(+{_TIMEOUT_GRACE:.0f}s grace)",
                            wall_time=float(wait) * (1 + starvation_waits),
                            attempts=attempts[index],
                            # The job's inherited chain state passes through
                            # even though the solve never finished, so a
                            # warm chain survives a timed-out point.
                            chain_context=payloads[index].get("chain_context"),
                            cache_key=keys[index],
                        )
                        abandoned = True
                        break
                    except Exception as exc:  # worker crashed or raised
                        if attempts[index] <= self.retries:
                            attempts[index] += 1
                            futures[index] = executor.submit(
                                execute_payload, payloads[index]
                            )
                            continue
                        results[index] = JobResult(
                            index=index,
                            label=batch[index].display_label(),
                            status=STATUS_ERROR,
                            error=f"{type(exc).__name__}: {exc}",
                            attempts=attempts[index],
                            chain_context=payloads[index].get("chain_context"),
                            cache_key=keys[index],
                        )
                        break
                    result = self._record(index, batch, keys, document)
                    result.attempts = attempts[index]
                    results[index] = result
                    break
        finally:
            # A stuck worker must not block the batch: abandon it and let
            # the pool reap it when its (cooperatively bounded) solve ends.
            # A persistent pool outlives the batch unless poisoned that
            # way; the next run() then starts a fresh one.
            if executor is not self._persistent:
                executor.shutdown(wait=not abandoned, cancel_futures=abandoned)
            elif abandoned:
                executor.shutdown(wait=False, cancel_futures=True)
                self._persistent = None

    def _make_pool(self, max_workers: int) -> ProcessPoolExecutor:
        context = (
            multiprocessing.get_context(self.mp_context)
            if self.mp_context is not None
            else None
        )
        return ProcessPoolExecutor(max_workers=max_workers, mp_context=context)

    def _execute_with_retries(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        attempt = 1
        while True:
            try:
                document = execute_payload(payload)
            except Exception as exc:
                if attempt <= self.retries:
                    attempt += 1
                    continue
                document = {
                    "status": STATUS_ERROR,
                    "error": f"{type(exc).__name__}: {exc}",
                    "wall_time": 0.0,
                    # Even a job that crashed out of all its attempts must
                    # pass its inherited chain state downstream — dropping
                    # it would silently cold-start the rest of the sweep.
                    "chain_context": payload.get("chain_context"),
                }
            document["attempts"] = attempt
            return document

    @staticmethod
    def _replicate(index: int, job: MappingJob, primary: JobResult) -> JobResult:
        """Clone a solved sibling's result for a coalesced duplicate job."""
        # JSON round-trip: the replica must not share mutable sub-documents
        # with the primary result.
        replica = JobResult.from_dict(json.loads(json.dumps(primary.to_dict())))
        replica.index = index
        replica.label = job.display_label()
        replica.deduped = True
        return replica

    def _record(
        self,
        index: int,
        batch: Sequence[MappingJob],
        keys: List[str],
        document: Dict[str, Any],
    ) -> JobResult:
        result = self._to_result(index, batch[index], keys[index], document)
        if self.cache is not None and result.status in (STATUS_OK, STATUS_FAILED):
            self.cache.put(keys[index], document)
        return result

    @staticmethod
    def _to_result(
        index: int, job: MappingJob, key: str, document: Dict[str, Any]
    ) -> JobResult:
        return JobResult(
            index=index,
            label=job.display_label(),
            status=document.get("status", STATUS_ERROR),
            objective=document.get("objective"),
            solver_status=document.get("solver_status", ""),
            assignment=dict(document.get("assignment") or {}),
            result=document.get("result"),
            fingerprint=document.get("fingerprint"),
            model_size=dict(document.get("model_size") or {}),
            solve_stats=dict(document.get("solve_stats") or {}),
            chain_context=document.get("chain_context"),
            error=document.get("error", ""),
            wall_time=float(document.get("wall_time", 0.0)),
            attempts=int(document.get("attempts", 1)),
            worker_pid=int(document.get("worker_pid", 0)),
            cache_key=key,
        )
