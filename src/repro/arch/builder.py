"""Predefined and synthetic reconfigurable-board builders.

The paper evaluates the mapper on unnamed RC boards characterised only by
their memory-complexity parameters (Table 3).  This module provides:

* **named boards** that combine the Table 1 on-chip types with off-chip
  SRAMs the way late-1990s RC boards (WILDFORCE/WILDSTAR-class) did; these
  are used by the examples and quick tests, and
* **synthetic boards** generated from a seed and a target complexity, used
  by the Table 3 / Figure 4 benchmark harness to hit the exact
  (#banks, #ports, #configs) values of each design point.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .bank import ArchitectureError, BankType, MemoryConfig, make_configurations
from .board import Board
from .devices import (
    ALTERA_EAB_CONFIGS,
    VIRTEX_BLOCKRAM_CONFIGS,
    apexe_esb,
    flex10k_eab,
    offchip_dram,
    offchip_sram,
    virtex_blockram,
)

__all__ = [
    "virtex_board",
    "apex_board",
    "flex10k_board",
    "hierarchical_board",
    "synthetic_board",
    "board_with_complexity",
    "heterogeneous_cost_board",
]


# --------------------------------------------------------------------------
# Named boards for examples and tests.
# --------------------------------------------------------------------------

def virtex_board(device: str = "XCV1000", num_srams: int = 4,
                 sram_depth: int = 65536, sram_width: int = 32,
                 name: Optional[str] = None) -> Board:
    """A single-FPGA Virtex board with directly attached ZBT-style SRAMs."""
    types = [
        virtex_blockram(device),
        offchip_sram(num_instances=num_srams, depth=sram_depth, width=sram_width),
    ]
    return Board(name=name or f"virtex-{device.lower()}", bank_types=tuple(types))


def apex_board(device: str = "EP20K400E", num_srams: int = 4,
               name: Optional[str] = None) -> Board:
    """A single-FPGA APEX E board with directly attached SRAMs."""
    types = [
        apexe_esb(device),
        offchip_sram(num_instances=num_srams),
    ]
    return Board(name=name or f"apex-{device.lower()}", bank_types=tuple(types))


def flex10k_board(device: str = "EPF10K100", num_srams: int = 2,
                  name: Optional[str] = None) -> Board:
    """A FLEX 10K board with a small number of off-chip SRAMs."""
    types = [
        flex10k_eab(device),
        offchip_sram(num_instances=num_srams),
    ]
    return Board(name=name or f"flex10k-{device.lower()}", bank_types=tuple(types))


def hierarchical_board(device: str = "XCV1000", name: str = "hierarchical") -> Board:
    """A board exposing a full memory hierarchy to the mapper.

    Four bank types with increasing capacity and decreasing performance:
    on-chip BlockRAM, directly attached SRAM, indirectly attached SRAM
    (behind a crossbar) and a DRAM.  This is the board used by most
    examples because it exercises every cost term of the objective.
    """
    types = [
        virtex_blockram(device),
        offchip_sram(num_instances=4, direct=True),
        offchip_sram(num_instances=4, direct=False, depth=262144, width=32),
        offchip_dram(num_instances=1),
    ]
    return Board(name=name, bank_types=tuple(types))


# --------------------------------------------------------------------------
# Synthetic boards for the benchmark harness.
# --------------------------------------------------------------------------

_SYNTH_ONCHIP_CONFIG_SETS: Tuple[Tuple[MemoryConfig, ...], ...] = (
    VIRTEX_BLOCKRAM_CONFIGS,
    ALTERA_EAB_CONFIGS,
)


def synthetic_board(
    num_types: int,
    instances_per_type: Sequence[int],
    seed: int = 0,
    name: str = "synthetic",
) -> Board:
    """Generate a board with ``num_types`` bank types and given instance counts.

    Types alternate between on-chip multi-configuration families (BlockRAM /
    EAB style) and off-chip single-configuration SRAMs with growing latency
    and pin distance, giving the mapper a genuine performance hierarchy.
    """
    if num_types <= 0:
        raise ArchitectureError("synthetic_board requires at least one bank type")
    if len(instances_per_type) != num_types:
        raise ArchitectureError("instances_per_type must have num_types entries")
    rng = np.random.default_rng(seed)
    types: List[BankType] = []
    for index in range(num_types):
        instances = int(instances_per_type[index])
        if index % 2 == 0:
            configs = _SYNTH_ONCHIP_CONFIG_SETS[(index // 2) % len(_SYNTH_ONCHIP_CONFIG_SETS)]
            ports = 2 if index % 4 == 0 else 1
            types.append(
                BankType(
                    name=f"onchip-{index}",
                    family="synthetic on-chip",
                    num_instances=instances,
                    num_ports=ports,
                    configurations=configs,
                    read_latency=1,
                    write_latency=1,
                    pins_traversed=0,
                )
            )
        else:
            depth = int(2 ** rng.integers(14, 18))
            width = int(rng.choice([16, 32, 64]))
            distance = 2 + 2 * ((index - 1) // 2 % 2)
            types.append(
                BankType(
                    name=f"offchip-{index}",
                    family="synthetic off-chip",
                    num_instances=instances,
                    num_ports=1,
                    configurations=(MemoryConfig(depth, width),),
                    read_latency=2 + (index - 1) // 2,
                    write_latency=2 + (index - 1) // 2,
                    pins_traversed=distance,
                )
            )
    return Board(name=name, bank_types=tuple(types))


def heterogeneous_cost_board(
    tiers: int = 3,
    banks_per_tier: int = 4,
    cost_spread: float = 2.0,
    base_words: int = 1024,
    width: int = 16,
    seed: int = 0,
    name: Optional[str] = None,
) -> Board:
    """A board of cost-tiered bank classes, EC2 instance-class style.

    Cloud embedders (distrinet's EC2 mapper) choose among instance
    classes that trade capacity against cost: each step up roughly
    doubles capacity but costs more to reach.  This builder expresses the
    same trade-off in the board vocabulary the mapper prices: tier ``t``
    quadruples the per-bank capacity of tier ``t-1`` while its access
    latency and pin distance grow by ``cost_spread`` per tier, so cheap
    capacity sits far away and fast banks are scarce.  Unlike
    :func:`hierarchical_board`, the resulting cost ladder is
    *parameterised* — ``tiers`` × ``cost_spread`` sweeps move the
    objective's break-even points, which is exactly what the
    ``hetero-cost`` scenario family explores.

    Tier 0 is dual-ported and multi-configuration (on-chip class); every
    other tier is a single-ported, single-configuration bank whose depth
    gets a small seeded jitter so distinct seeds give distinct (but
    reproducible) boards.
    """
    if tiers < 1:
        raise ArchitectureError("heterogeneous_cost_board needs tiers >= 1")
    if banks_per_tier < 1:
        raise ArchitectureError("heterogeneous_cost_board needs banks_per_tier >= 1")
    if cost_spread < 1.0:
        raise ArchitectureError(
            "heterogeneous_cost_board needs cost_spread >= 1.0 (each tier "
            "must cost at least as much as the previous one)"
        )
    if base_words < 16:
        raise ArchitectureError("heterogeneous_cost_board needs base_words >= 16")
    rng = np.random.default_rng(seed)
    types: List[BankType] = []
    for tier in range(tiers):
        capacity_words = base_words * (4 ** tier)
        if tier == 0:
            types.append(
                BankType(
                    name="tier0-onchip",
                    family="hetero-cost tier 0",
                    num_instances=banks_per_tier,
                    num_ports=2,
                    # Equal-capacity configuration set (Table 1 style):
                    # the same bits reachable as deep-narrow, square or
                    # shallow-wide words.
                    configurations=make_configurations(
                        (
                            (capacity_words * 2, max(1, width // 2)),
                            (capacity_words, width),
                            (capacity_words // 2, width * 2),
                        )
                    ),
                    read_latency=1,
                    write_latency=1,
                    pins_traversed=0,
                )
            )
            continue
        jitter = int(rng.integers(0, max(1, capacity_words // 8)))
        latency = max(2, int(round((1 + tier) * cost_spread)))
        types.append(
            BankType(
                name=f"tier{tier}-class",
                family=f"hetero-cost tier {tier}",
                num_instances=banks_per_tier,
                num_ports=1,
                configurations=(MemoryConfig(capacity_words + jitter, width),),
                read_latency=latency,
                write_latency=latency,
                pins_traversed=2 * tier * max(1, int(round(cost_spread))),
            )
        )
    return Board(
        name=name or f"hetero-{tiers}x{banks_per_tier}",
        bank_types=tuple(types),
    )


def board_with_complexity(
    total_banks: int,
    total_ports: int,
    total_configs: int,
    seed: int = 0,
    name: str = "benchmark-board",
) -> Board:
    """Build a board matching the Table 3 physical-memory complexity triple.

    The generator chooses a mix of dual-ported multi-configuration on-chip
    types (five configurations each, like Table 1) and single-ported
    single-configuration off-chip types so that:

    * the instance counts sum to ``total_banks``,
    * ports summed over instances equal ``total_ports``, and
    * configuration settings summed over multi-config ports equal
      ``total_configs``.

    The three targets are not independent (``configs`` must be five times
    the number of multi-config ports, and ports lie between one and two per
    bank); the builder satisfies them exactly whenever the triple is
    consistent and raises :class:`ArchitectureError` otherwise.
    """
    if total_banks <= 0 or total_ports < total_banks:
        raise ArchitectureError(
            "need at least one bank and at least one port per bank "
            f"(banks={total_banks}, ports={total_ports})"
        )
    if total_ports > 2 * total_banks:
        raise ArchitectureError(
            f"ports={total_ports} exceeds two per bank for banks={total_banks}"
        )
    if total_configs % 5 != 0:
        raise ArchitectureError(
            f"configs={total_configs} must be a multiple of 5 (five settings per "
            "multi-configuration port, as in Table 1)"
        )

    # Dual-ported banks account for the ports beyond one-per-bank.
    dual_banks = total_ports - total_banks
    single_banks = total_banks - dual_banks

    # Multi-configuration ports required to reach the configs target.
    multi_ports_needed = total_configs // 5
    if multi_ports_needed > total_ports:
        raise ArchitectureError(
            f"configs={total_configs} requires {multi_ports_needed} multi-config "
            f"ports, more than the {total_ports} ports available"
        )

    rng = np.random.default_rng(seed)
    types: List[BankType] = []

    # Greedily cover the multi-config ports, preferring dual-ported on-chip
    # banks (2 multi-config ports per bank), then single-ported on-chip banks.
    remaining_multi_ports = multi_ports_needed
    remaining_dual = dual_banks
    remaining_single = single_banks

    dual_multi_banks = min(remaining_dual, remaining_multi_ports // 2)
    remaining_multi_ports -= 2 * dual_multi_banks
    remaining_dual -= dual_multi_banks

    single_multi_banks = min(remaining_single, remaining_multi_ports)
    remaining_multi_ports -= single_multi_banks
    remaining_single -= single_multi_banks

    if remaining_multi_ports > 0:
        # One dual-ported bank can still contribute a single multi-config port
        # only if we split a type; simplest consistent fix is to convert one
        # remaining dual bank into a multi-config dual bank and absorb the
        # surplus by removing one single-ported multi-config bank.
        if remaining_dual > 0 and single_multi_banks > 0:
            dual_multi_banks += 1
            remaining_dual -= 1
            single_multi_banks -= 1
            remaining_single += 1
            remaining_multi_ports = 0
        else:
            raise ArchitectureError(
                "cannot realise the requested (banks, ports, configs) triple "
                f"({total_banks}, {total_ports}, {total_configs})"
            )

    def add_type(name_prefix: str, instances: int, ports: int,
                 multi_config: bool, distance_rank: int) -> None:
        if instances <= 0:
            return
        if multi_config:
            configs = _SYNTH_ONCHIP_CONFIG_SETS[len(types) % len(_SYNTH_ONCHIP_CONFIG_SETS)]
            pins = 0
            read_latency = write_latency = 1
        else:
            depth = int(2 ** rng.integers(14, 17))
            width = int(rng.choice([16, 32]))
            configs = (MemoryConfig(depth, width),)
            pins = 2 * (1 + distance_rank)
            read_latency = write_latency = 2 + distance_rank
        types.append(
            BankType(
                name=f"{name_prefix}-{len(types)}",
                family="benchmark",
                num_instances=instances,
                num_ports=ports,
                configurations=configs,
                read_latency=read_latency,
                write_latency=write_latency,
                pins_traversed=pins,
            )
        )

    # Split each category into at most two types so boards have a realistic
    # number of distinct types (4-8) without inflating the ILP beyond the
    # paper's setting.
    def split(count: int) -> Tuple[int, int]:
        if count <= 3:
            return count, 0
        first = count // 2
        return first, count - first

    a, b = split(dual_multi_banks)
    add_type("onchip-dual", a, 2, True, 0)
    add_type("onchip-dual", b, 2, True, 0)
    a, b = split(single_multi_banks)
    add_type("onchip-single", a, 1, True, 0)
    add_type("onchip-single", b, 1, True, 0)
    a, b = split(remaining_dual)
    add_type("offchip-dual", a, 2, False, 0)
    add_type("offchip-dual", b, 2, False, 1)
    a, b = split(remaining_single)
    add_type("offchip-single", a, 1, False, 0)
    add_type("offchip-single", b, 1, False, 1)

    board = Board(name=name, bank_types=tuple(types))
    # The construction above is exact; keep a defensive check so benchmark
    # design points can trust the complexity they report.
    actual = (board.total_banks, board.total_ports, board.total_config_settings)
    expected = (total_banks, total_ports, total_configs)
    if actual != expected:
        raise ArchitectureError(
            f"internal error: built board complexity {actual} != requested {expected}"
        )
    return board
