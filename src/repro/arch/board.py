"""Reconfigurable-computing board description consumed by the mappers.

A :class:`Board` is simply a named collection of :class:`~repro.arch.bank.BankType`
objects plus the single processing unit assumed by the paper (Section 3:
"it is assumed that the RC board contains only one processing unit").  The
class also exposes the three physical-memory complexity parameters used to
characterise design points in Table 3: total banks, total ports and total
configuration settings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from .bank import ArchitectureError, BankType

__all__ = ["Board"]


@dataclass(frozen=True)
class Board:
    """A fixed memory architecture: bank types plus one processing unit."""

    name: str
    bank_types: Tuple[BankType, ...]
    #: Clock period of the processing unit in nanoseconds; only used by the
    #: access simulator to convert cycle counts into time.
    clock_ns: float = 20.0

    def __post_init__(self) -> None:
        if not self.bank_types:
            raise ArchitectureError(f"board {self.name!r} has no memory bank types")
        types = tuple(self.bank_types)
        object.__setattr__(self, "bank_types", types)
        names = [t.name for t in types]
        if len(set(names)) != len(names):
            raise ArchitectureError(f"board {self.name!r} has duplicate bank-type names")
        if self.clock_ns <= 0:
            raise ArchitectureError(f"board {self.name!r}: clock period must be positive")

    # ------------------------------------------------------------- lookups
    def __iter__(self):
        return iter(self.bank_types)

    def __len__(self) -> int:
        return len(self.bank_types)

    @property
    def type_names(self) -> Tuple[str, ...]:
        return tuple(t.name for t in self.bank_types)

    def type_by_name(self, name: str) -> BankType:
        for bank_type in self.bank_types:
            if bank_type.name == name:
                return bank_type
        raise ArchitectureError(f"board {self.name!r} has no bank type named {name!r}")

    def type_index(self, name: str) -> int:
        for index, bank_type in enumerate(self.bank_types):
            if bank_type.name == name:
                return index
        raise ArchitectureError(f"board {self.name!r} has no bank type named {name!r}")

    @property
    def on_chip_types(self) -> Tuple[BankType, ...]:
        return tuple(t for t in self.bank_types if t.is_on_chip)

    @property
    def off_chip_types(self) -> Tuple[BankType, ...]:
        return tuple(t for t in self.bank_types if not t.is_on_chip)

    # -------------------------------------------------- complexity parameters
    @property
    def total_banks(self) -> int:
        """Total physical banks (Table 3 "Total #banks" column)."""
        return sum(t.num_instances for t in self.bank_types)

    @property
    def total_ports(self) -> int:
        """Ports summed over all instances of all types (Table 3 "#ports")."""
        return sum(t.total_ports for t in self.bank_types)

    @property
    def total_config_settings(self) -> int:
        """Configuration settings over all multi-config ports (Table 3 "#configs")."""
        return sum(t.total_config_settings for t in self.bank_types)

    @property
    def total_capacity_bits(self) -> int:
        return sum(t.total_capacity_bits for t in self.bank_types)

    @property
    def num_types(self) -> int:
        return len(self.bank_types)

    def complexity(self) -> Dict[str, int]:
        """The Table 3 physical-memory complexity triple plus type count."""
        return {
            "types": self.num_types,
            "banks": self.total_banks,
            "ports": self.total_ports,
            "configs": self.total_config_settings,
        }

    # ------------------------------------------------------------ reporting
    def describe(self) -> str:
        """Multi-line human readable description (used by examples)."""
        lines = [
            f"Board {self.name!r}: {self.num_types} bank types, "
            f"{self.total_banks} banks, {self.total_ports} ports, "
            f"{self.total_capacity_bits} bits total"
        ]
        for bank_type in self.bank_types:
            lines.append("  " + bank_type.describe())
        return "\n".join(lines)

    def with_types(self, bank_types: Sequence[BankType], name: Optional[str] = None) -> "Board":
        """Return a copy of the board with a different set of bank types."""
        return Board(name=name or self.name, bank_types=tuple(bank_types), clock_ns=self.clock_ns)
