"""Generic physical memory-bank model (Figure 1 of the paper).

A reconfigurable-computing board is described to the mapper as a collection
of *bank types*.  All physical instances of a type share the same storage
size, port count, depth/width configurations, access latencies and distance
(pins traversed) from the processing unit; only the instance identity
differs.  This is exactly the abstraction of Section 3.1 / Figure 1:

* ``num_instances``  — :math:`I_t`, how many physical banks of the type exist,
* ``num_ports``      — :math:`P_t`, ports per bank (1 = single-ported, 2 = dual-ported, ...),
* ``configurations`` — the :math:`C_t` selectable depth/width ratios
  (:math:`D_t`, :math:`W_t` lists), all with the same bit capacity,
* ``read_latency`` / ``write_latency`` — :math:`RL_t`, :math:`WL_t` in clock cycles,
* ``pins_traversed`` — :math:`T_t`; 0 for on-chip banks, 2 for directly
  connected off-chip banks, more for indirectly connected banks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Tuple

__all__ = ["MemoryConfig", "BankType", "ArchitectureError"]


class ArchitectureError(ValueError):
    """Raised when an architecture description is internally inconsistent."""


@dataclass(frozen=True, order=True)
class MemoryConfig:
    """One selectable depth/width ratio of a memory bank.

    ``depth`` is the number of addressable words and ``width`` the number of
    bits per word.  The paper assumes every configuration of a bank has the
    same total capacity (``depth * width``); :class:`BankType` enforces this.
    """

    depth: int
    width: int

    def __post_init__(self) -> None:
        if self.depth <= 0 or self.width <= 0:
            raise ArchitectureError(
                f"memory configuration must be positive, got {self.depth}x{self.width}"
            )

    @property
    def capacity_bits(self) -> int:
        """Total number of bits addressable in this configuration."""
        return self.depth * self.width

    def __str__(self) -> str:
        return f"{self.depth}x{self.width}"

    @classmethod
    def parse(cls, text: str) -> "MemoryConfig":
        """Parse a ``"<depth>x<width>"`` string (as written in Table 1)."""
        try:
            depth_text, width_text = text.lower().split("x")
            return cls(int(depth_text), int(width_text))
        except (ValueError, AttributeError) as exc:
            raise ArchitectureError(f"cannot parse memory configuration {text!r}") from exc


@dataclass(frozen=True)
class BankType:
    """A class of identical physical memory banks on the RC board."""

    name: str
    num_instances: int
    num_ports: int
    configurations: Tuple[MemoryConfig, ...]
    read_latency: int = 1
    write_latency: int = 1
    pins_traversed: int = 0
    #: Free-form vendor/family tag (e.g. "Xilinx Virtex BlockRAM"); not used
    #: by the mapper, only for reporting.
    family: str = ""
    #: Set to True to allow configurations with unequal capacities (departs
    #: from the paper's assumption; the pre-processing then uses the largest).
    allow_unequal_capacity: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ArchitectureError("bank type requires a non-empty name")
        if self.num_instances <= 0:
            raise ArchitectureError(f"{self.name}: num_instances must be positive")
        if self.num_ports <= 0:
            raise ArchitectureError(f"{self.name}: num_ports must be positive")
        if not self.configurations:
            raise ArchitectureError(f"{self.name}: at least one configuration is required")
        if self.read_latency < 0 or self.write_latency < 0:
            raise ArchitectureError(f"{self.name}: latencies must be non-negative")
        if self.pins_traversed < 0:
            raise ArchitectureError(f"{self.name}: pins_traversed must be non-negative")
        configs = tuple(
            c if isinstance(c, MemoryConfig) else MemoryConfig(*c)
            for c in self.configurations
        )
        object.__setattr__(self, "configurations", configs)
        capacities = {c.capacity_bits for c in configs}
        if len(capacities) > 1 and not self.allow_unequal_capacity:
            raise ArchitectureError(
                f"{self.name}: configurations must share one capacity, got "
                f"{sorted(capacities)} bits (set allow_unequal_capacity to override)"
            )
        widths = [c.width for c in configs]
        if len(set(widths)) != len(widths):
            raise ArchitectureError(f"{self.name}: duplicate configuration widths {widths}")

    # ------------------------------------------------------------ geometry
    @property
    def num_configs(self) -> int:
        """:math:`C_t` — number of selectable depth/width ratios."""
        return len(self.configurations)

    @property
    def is_multi_config(self) -> bool:
        return self.num_configs > 1

    @property
    def capacity_bits(self) -> int:
        """Bit capacity of a single instance (maximum over configurations)."""
        return max(c.capacity_bits for c in self.configurations)

    @property
    def total_capacity_bits(self) -> int:
        """Bit capacity summed over all instances of the type."""
        return self.capacity_bits * self.num_instances

    @property
    def total_ports(self) -> int:
        """Ports summed over all instances (:math:`P_t \\cdot I_t`)."""
        return self.num_ports * self.num_instances

    @property
    def total_config_settings(self) -> int:
        """Configuration settings summed over all multi-configuration ports.

        This is the third physical-memory complexity parameter of Table 3:
        zero for single-configuration types, ``I_t * P_t * C_t`` otherwise.
        """
        if not self.is_multi_config:
            return 0
        return self.num_instances * self.num_ports * self.num_configs

    @property
    def depths(self) -> Tuple[int, ...]:
        """:math:`D_t` — the depth list, ordered as the configurations."""
        return tuple(c.depth for c in self.configurations)

    @property
    def widths(self) -> Tuple[int, ...]:
        """:math:`W_t` — the width list, ordered as the configurations."""
        return tuple(c.width for c in self.configurations)

    @property
    def is_on_chip(self) -> bool:
        """On-chip banks traverse zero pins to reach the processing unit."""
        return self.pins_traversed == 0

    @property
    def is_dual_ported(self) -> bool:
        return self.num_ports == 2

    @property
    def round_trip_latency(self) -> int:
        """Read plus write latency (:math:`RL_t + WL_t`)."""
        return self.read_latency + self.write_latency

    # ------------------------------------------------------------- lookups
    def configs_by_width(self) -> Tuple[MemoryConfig, ...]:
        """Configurations sorted by increasing word width."""
        return tuple(sorted(self.configurations, key=lambda c: c.width))

    def widest_config(self) -> MemoryConfig:
        """The configuration with the widest words (and smallest depth)."""
        return max(self.configurations, key=lambda c: c.width)

    def narrowest_config(self) -> MemoryConfig:
        """The configuration with the narrowest words (and largest depth)."""
        return min(self.configurations, key=lambda c: c.width)

    def config_index(self, config: MemoryConfig) -> int:
        """Index of ``config`` in the declared configuration order."""
        try:
            return self.configurations.index(config)
        except ValueError:
            raise ArchitectureError(f"{config} is not a configuration of {self.name}")

    def scaled(self, num_instances: Optional[int] = None, name: Optional[str] = None) -> "BankType":
        """Return a copy with a different instance count (board builders)."""
        return BankType(
            name=name or self.name,
            num_instances=num_instances if num_instances is not None else self.num_instances,
            num_ports=self.num_ports,
            configurations=self.configurations,
            read_latency=self.read_latency,
            write_latency=self.write_latency,
            pins_traversed=self.pins_traversed,
            family=self.family,
            allow_unequal_capacity=self.allow_unequal_capacity,
        )

    def describe(self) -> str:
        """Human-readable one-line summary used by reports and examples."""
        configs = "/".join(str(c) for c in self.configurations)
        location = "on-chip" if self.is_on_chip else f"off-chip ({self.pins_traversed} pins)"
        return (
            f"{self.name}: {self.num_instances} x {self.num_ports}-port, "
            f"{self.capacity_bits} bits, configs {configs}, "
            f"RL={self.read_latency} WL={self.write_latency}, {location}"
        )


def make_configurations(specs: Iterable) -> Tuple[MemoryConfig, ...]:
    """Normalise a mixed list of config specs into :class:`MemoryConfig` tuples.

    Accepts ``MemoryConfig`` instances, ``(depth, width)`` pairs and
    ``"DxW"`` strings, in any combination.
    """
    configs = []
    for spec in specs:
        if isinstance(spec, MemoryConfig):
            configs.append(spec)
        elif isinstance(spec, str):
            configs.append(MemoryConfig.parse(spec))
        else:
            depth, width = spec
            configs.append(MemoryConfig(int(depth), int(width)))
    return tuple(configs)
