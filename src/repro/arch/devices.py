"""Device catalog of FPGA on-chip RAM resources (Table 1 of the paper).

The paper motivates the mapping problem with the on-chip memory blocks of
three commercial FPGA families circa 2000/2001:

==============  ===================  ================  =============================
Family          On-chip RAM          Banks per device  Configurations (depth x width)
==============  ===================  ================  =============================
Xilinx Virtex   BlockRAM (4096 bit)  8 .. 208          4096x1 2048x2 1024x4 512x8 256x16
Altera FLEX10K  EAB      (2048 bit)  9 .. 20           2048x1 1024x2 512x4 256x8 128x16
Altera APEX E   ESB      (2048 bit)  12 .. 216         2048x1 1024x2 512x4 256x8 128x16
==============  ===================  ================  =============================

The per-device bank counts at the range endpoints (XCV50=8, XCV3200E=208,
EPF10K70=9, EPF10K250A=20, EP20K30E=12, EP20K1500E=216) are exactly the
numbers quoted in the paper; intermediate devices follow the vendor data
sheets referenced by the paper ([18], [2], [1]) and are included so that
boards of many different sizes can be modelled.

Besides the on-chip catalog, this module defines representative *off-chip*
bank types (directly and indirectly connected SRAM) with the latency and
pin-traversal models of Section 3.1, since the mapping problem is only
interesting when on-chip and off-chip memories compete.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .bank import BankType, MemoryConfig, make_configurations

__all__ = [
    "VIRTEX_BLOCKRAM_CONFIGS",
    "ALTERA_EAB_CONFIGS",
    "VIRTEX_BLOCKRAM_COUNTS",
    "FLEX10K_EAB_COUNTS",
    "APEXE_ESB_COUNTS",
    "ONCHIP_RAM_TABLE",
    "virtex_blockram",
    "flex10k_eab",
    "apexe_esb",
    "offchip_sram",
    "offchip_dram",
    "onchip_ram_table_rows",
    "list_devices",
]

# --------------------------------------------------------------------------
# Configuration sets (Table 1, "Configurations" column).
# --------------------------------------------------------------------------

#: Xilinx Virtex BlockRAM: 4096 bits, five selectable aspect ratios.
VIRTEX_BLOCKRAM_CONFIGS: Tuple[MemoryConfig, ...] = make_configurations(
    ["4096x1", "2048x2", "1024x4", "512x8", "256x16"]
)

#: Altera FLEX 10K EAB and APEX E ESB: 2048 bits, five aspect ratios.
ALTERA_EAB_CONFIGS: Tuple[MemoryConfig, ...] = make_configurations(
    ["2048x1", "1024x2", "512x4", "256x8", "128x16"]
)

# --------------------------------------------------------------------------
# Per-device on-chip bank counts.  The endpoints of every family match the
# ranges quoted in the paper; intermediate devices follow the vendor data
# sheets the paper cites.
# --------------------------------------------------------------------------

VIRTEX_BLOCKRAM_COUNTS: Dict[str, int] = {
    "XCV50": 8,
    "XCV100": 10,
    "XCV150": 12,
    "XCV200": 14,
    "XCV300": 16,
    "XCV400": 20,
    "XCV600": 24,
    "XCV800": 28,
    "XCV1000": 32,
    "XCV400E": 40,
    "XCV600E": 72,
    "XCV1000E": 96,
    "XCV1600E": 144,
    "XCV2000E": 160,
    "XCV2600E": 184,
    "XCV3200E": 208,
}

FLEX10K_EAB_COUNTS: Dict[str, int] = {
    "EPF10K70": 9,
    "EPF10K100": 12,
    "EPF10K130": 16,
    "EPF10K200": 18,
    "EPF10K250A": 20,
}

APEXE_ESB_COUNTS: Dict[str, int] = {
    "EP20K30E": 12,
    "EP20K60E": 16,
    "EP20K100E": 26,
    "EP20K160E": 40,
    "EP20K200E": 52,
    "EP20K300E": 72,
    "EP20K400E": 104,
    "EP20K600E": 152,
    "EP20K1000E": 160,
    "EP20K1500E": 216,
}

#: Summary rows used to regenerate Table 1 (family, RAM name, bank range,
#: capacity in bits, configuration strings).
ONCHIP_RAM_TABLE: Tuple[Dict[str, object], ...] = (
    {
        "family": "Xilinx Virtex",
        "ram_name": "BlockRAM",
        "min_banks": min(VIRTEX_BLOCKRAM_COUNTS.values()),
        "max_banks": max(VIRTEX_BLOCKRAM_COUNTS.values()),
        "size_bits": 4096,
        "configurations": tuple(str(c) for c in VIRTEX_BLOCKRAM_CONFIGS),
        "counts": VIRTEX_BLOCKRAM_COUNTS,
    },
    {
        "family": "Altera Flex 10K",
        "ram_name": "Embedded Array Block",
        "min_banks": min(FLEX10K_EAB_COUNTS.values()),
        "max_banks": max(FLEX10K_EAB_COUNTS.values()),
        "size_bits": 2048,
        "configurations": tuple(str(c) for c in ALTERA_EAB_CONFIGS),
        "counts": FLEX10K_EAB_COUNTS,
    },
    {
        "family": "Altera Apex E",
        "ram_name": "Embedded System Block",
        "min_banks": min(APEXE_ESB_COUNTS.values()),
        "max_banks": max(APEXE_ESB_COUNTS.values()),
        "size_bits": 2048,
        "configurations": tuple(str(c) for c in ALTERA_EAB_CONFIGS),
        "counts": APEXE_ESB_COUNTS,
    },
)


def _lookup_count(counts: Dict[str, int], device: str, family: str) -> int:
    try:
        return counts[device.upper()]
    except KeyError:
        known = ", ".join(sorted(counts))
        raise KeyError(f"unknown {family} device {device!r}; known devices: {known}")


# --------------------------------------------------------------------------
# On-chip bank type constructors.
# --------------------------------------------------------------------------

def virtex_blockram(device: str = "XCV1000", num_ports: int = 2,
                    read_latency: int = 1, write_latency: int = 1) -> BankType:
    """On-chip BlockRAM bank type of a Xilinx Virtex / Virtex-E device.

    Virtex BlockRAMs are true dual-port memories; ``num_ports`` defaults to
    two but can be reduced to model designs that tie one port off.
    """
    count = _lookup_count(VIRTEX_BLOCKRAM_COUNTS, device, "Xilinx Virtex")
    return BankType(
        name=f"{device.upper()}-BlockRAM",
        family="Xilinx Virtex BlockRAM",
        num_instances=count,
        num_ports=num_ports,
        configurations=VIRTEX_BLOCKRAM_CONFIGS,
        read_latency=read_latency,
        write_latency=write_latency,
        pins_traversed=0,
    )


def flex10k_eab(device: str = "EPF10K100", num_ports: int = 1,
                read_latency: int = 1, write_latency: int = 1) -> BankType:
    """On-chip Embedded Array Block bank type of an Altera FLEX 10K device.

    EABs are single-ported in their standard RAM mode; pass ``num_ports=2``
    to model the dual-port EAB mode of later family members.
    """
    count = _lookup_count(FLEX10K_EAB_COUNTS, device, "Altera FLEX 10K")
    return BankType(
        name=f"{device.upper()}-EAB",
        family="Altera FLEX 10K EAB",
        num_instances=count,
        num_ports=num_ports,
        configurations=ALTERA_EAB_CONFIGS,
        read_latency=read_latency,
        write_latency=write_latency,
        pins_traversed=0,
    )


def apexe_esb(device: str = "EP20K400E", num_ports: int = 2,
              read_latency: int = 1, write_latency: int = 1) -> BankType:
    """On-chip Embedded System Block bank type of an Altera APEX E device."""
    count = _lookup_count(APEXE_ESB_COUNTS, device, "Altera APEX E")
    return BankType(
        name=f"{device.upper()}-ESB",
        family="Altera APEX E ESB",
        num_instances=count,
        num_ports=num_ports,
        configurations=ALTERA_EAB_CONFIGS,
        read_latency=read_latency,
        write_latency=write_latency,
        pins_traversed=0,
    )


# --------------------------------------------------------------------------
# Off-chip bank types (Section 3.1 latency / pin-traversal model).
# --------------------------------------------------------------------------

def offchip_sram(num_instances: int = 4, depth: int = 65536, width: int = 32,
                 num_ports: int = 1, read_latency: int = 2, write_latency: int = 2,
                 direct: bool = True, name: str = "") -> BankType:
    """A board-level SRAM bank type (single fixed configuration).

    ``direct=True`` models an SRAM wired straight to the FPGA (two pins
    traversed in the paper's model); ``direct=False`` models an SRAM behind
    a crossbar or a neighbouring FPGA (four pins traversed).
    """
    pins = 2 if direct else 4
    label = name or ("SRAM-direct" if direct else "SRAM-indirect")
    return BankType(
        name=label,
        family="off-chip SRAM",
        num_instances=num_instances,
        num_ports=num_ports,
        configurations=(MemoryConfig(depth, width),),
        read_latency=read_latency,
        write_latency=write_latency,
        pins_traversed=pins,
    )


def offchip_dram(num_instances: int = 1, depth: int = 1 << 20, width: int = 32,
                 read_latency: int = 6, write_latency: int = 4,
                 name: str = "DRAM") -> BankType:
    """A large, slow, indirectly connected DRAM bank type.

    Not present in the paper's experiments but useful for examples: it gives
    the mapper a high-capacity last-resort type with poor latency.
    """
    return BankType(
        name=name,
        family="off-chip DRAM",
        num_instances=num_instances,
        num_ports=1,
        configurations=(MemoryConfig(depth, width),),
        read_latency=read_latency,
        write_latency=write_latency,
        pins_traversed=4,
    )


# --------------------------------------------------------------------------
# Table 1 rendering helpers.
# --------------------------------------------------------------------------

def onchip_ram_table_rows() -> List[Dict[str, object]]:
    """Rows of Table 1 as dictionaries (used by the Table 1 benchmark)."""
    rows: List[Dict[str, object]] = []
    for entry in ONCHIP_RAM_TABLE:
        rows.append(
            {
                "device": entry["family"],
                "ram_name": entry["ram_name"],
                "banks": f"{entry['min_banks']} - {entry['max_banks']}",
                "size_bits": entry["size_bits"],
                "configurations": list(entry["configurations"]),
            }
        )
    return rows


def list_devices(family: str) -> Dict[str, int]:
    """Return the device→bank-count map for ``family``.

    ``family`` accepts ``"virtex"``, ``"flex10k"`` or ``"apexe"`` (case
    insensitive, punctuation ignored).
    """
    key = family.lower().replace(" ", "").replace("-", "").replace("_", "")
    if "virtex" in key:
        return dict(VIRTEX_BLOCKRAM_COUNTS)
    if "flex" in key:
        return dict(FLEX10K_EAB_COUNTS)
    if "apex" in key:
        return dict(APEXE_ESB_COUNTS)
    raise KeyError(f"unknown FPGA family {family!r}")
