"""Architecture substrate: memory bank types, boards and device catalogs.

This package implements the architecture-description side of the paper's
problem formulation (Section 3.1 and Figure 1): a reconfigurable board is a
collection of memory *bank types*, each with a number of identical
instances, a port count, one or more depth/width configurations, read/write
latencies and a pin-traversal distance from the single processing unit.
"""

from .bank import ArchitectureError, BankType, MemoryConfig, make_configurations
from .board import Board
from .builder import (
    apex_board,
    board_with_complexity,
    flex10k_board,
    heterogeneous_cost_board,
    hierarchical_board,
    synthetic_board,
    virtex_board,
)
from .devices import (
    ALTERA_EAB_CONFIGS,
    APEXE_ESB_COUNTS,
    FLEX10K_EAB_COUNTS,
    ONCHIP_RAM_TABLE,
    VIRTEX_BLOCKRAM_CONFIGS,
    VIRTEX_BLOCKRAM_COUNTS,
    apexe_esb,
    flex10k_eab,
    list_devices,
    offchip_dram,
    offchip_sram,
    onchip_ram_table_rows,
    virtex_blockram,
)

__all__ = [
    "ArchitectureError",
    "BankType",
    "MemoryConfig",
    "make_configurations",
    "Board",
    # boards
    "virtex_board",
    "apex_board",
    "flex10k_board",
    "hierarchical_board",
    "synthetic_board",
    "board_with_complexity",
    "heterogeneous_cost_board",
    # devices
    "virtex_blockram",
    "flex10k_eab",
    "apexe_esb",
    "offchip_sram",
    "offchip_dram",
    "onchip_ram_table_rows",
    "list_devices",
    "VIRTEX_BLOCKRAM_CONFIGS",
    "ALTERA_EAB_CONFIGS",
    "VIRTEX_BLOCKRAM_COUNTS",
    "FLEX10K_EAB_COUNTS",
    "APEXE_ESB_COUNTS",
    "ONCHIP_RAM_TABLE",
]
