"""Sharded serve tier: a consistent-hashing router over service replicas.

``repro serve --replicas N`` boots N :class:`~repro.serve.service
.MappingService` processes (one engine each) that share a single on-disk
result-cache key space, and puts this router in front of them.  The
router speaks the exact same v1 wire API as a single server — clients
cannot tell the difference — and adds the fleet concerns:

* **Sharding.**  Job identity keys (the canonical hash of a submission's
  identity fields) are placed on a consistent-hash ring with virtual
  nodes, so identical submissions always land on the same replica and
  dedupe there, while a membership change only re-routes the ~1/N of the
  key space owned by the changed replica.
* **Admission control & backpressure.**  Each replica has a bounded
  router-side in-flight budget.  When a shard is saturated, low-priority
  submissions are **shed** with a structured 503 (code ``SHED``) and the
  rest are pushed back with a 429 carrying ``retry_after_ms`` and a
  ``Retry-After`` header (code ``RETRY_AFTER``) — an open-loop load
  generator sees explicit signals instead of unbounded queueing.
* **Health checking & re-hash.**  A background loop polls every replica;
  a dead one is removed from the ring, its unfinished jobs are
  resubmitted to the surviving shards **under their original router job
  ids** (no ticket is lost), and a supervisor (when attached) restarts
  the process and re-adds it to the ring.
* **Warm-state reuse.**  The replicas exchange exported solve state
  through the shared cache directory (see
  :class:`~repro.serve.store.WarmStateStore`); the router's health
  report aggregates the resulting ``warm_imports`` so cross-replica
  reuse is observable at the front door.

The router never solves anything and keeps no persistent state: every
mapping result, cache entry and warm seed lives in the replicas and the
shared store.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import itertools
import json
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple
from urllib.parse import urlsplit

from ..engine.cache import canonical_hash
from ..io.serve import (
    TERMINAL_STATES,
    WIRE_VERSION,
    HealthReport,
    JobStatus,
    JobSubmission,
)
from .protocol import HttpRequest, error_response, json_response, parse_json_body
from .server import BaseHttpServer

__all__ = [
    "HashRing",
    "RouterError",
    "ReplicaUnreachable",
    "RouterService",
    "RouterServer",
    "routing_key",
]

#: Submission fields that define job identity for routing: everything the
#: engine's cache key depends on, none of the serving metadata.  Label,
#: priority and deadline must not scatter duplicates across shards.
_ROUTING_FIELDS = (
    "board",
    "design",
    "weights",
    "solver",
    "solver_options",
    "capacity_mode",
    "port_estimation",
    "warm_start",
    "warm_retries",
    "mode",
    "gap_limit",
    "timeout",
)


def routing_key(submission: JobSubmission) -> str:
    """Identity hash a submission is sharded by.

    Two submissions get the same routing key exactly when the replica
    would compute the same admission cache key for them (modulo the
    engine's default timeout, which every replica of a fleet shares), so
    duplicates co-locate and dedupe on their shard.
    """
    wire = submission.to_wire()
    return canonical_hash({key: wire.get(key) for key in _ROUTING_FIELDS})


class RouterError(Exception):
    """A request the router refuses; carries the structured error parts."""

    def __init__(
        self, status: int, message: str, code: str = "", **extra: Any
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.extra = extra


class ReplicaUnreachable(RouterError):
    """A replica did not answer (connect failure, timeout, bad bytes)."""

    def __init__(self, name: str, message: str) -> None:
        super().__init__(502, message, code="REPLICA_UNREACHABLE")
        self.name = name


class HashRing:
    """Consistent-hash ring with virtual nodes.

    Each member is hashed onto ``vnodes`` ring positions; a key routes to
    the first member clockwise from its own hash.  Removing a member
    re-routes only the keys it owned, spread over the survivors — the
    property that keeps shard-local caches warm through membership
    churn.
    """

    def __init__(self, members: Sequence[str] = (), vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._points: List[Tuple[int, str]] = []
        self._hashes: List[int] = []
        self._members: Dict[str, List[int]] = {}
        for member in members:
            self.add(member)

    @staticmethod
    def _hash(value: str) -> int:
        return int.from_bytes(
            hashlib.sha256(value.encode("utf-8")).digest()[:8], "big"
        )

    def _rebuild(self) -> None:
        self._points.sort()
        self._hashes = [point for point, _ in self._points]

    def add(self, member: str) -> None:
        if member in self._members:
            return
        hashes = [
            self._hash(f"{member}#{index}") for index in range(self.vnodes)
        ]
        self._members[member] = hashes
        self._points.extend((point, member) for point in hashes)
        self._rebuild()

    def remove(self, member: str) -> None:
        hashes = self._members.pop(member, None)
        if hashes is None:
            return
        gone = set(hashes)
        self._points = [
            (point, name)
            for point, name in self._points
            if not (name == member and point in gone)
        ]
        self._rebuild()

    def members(self) -> List[str]:
        return sorted(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    def route(self, key: str) -> Optional[str]:
        """The member owning ``key``; ``None`` on an empty ring."""
        if not self._points:
            return None
        index = bisect.bisect_right(self._hashes, self._hash(key))
        if index == len(self._points):
            index = 0
        return self._points[index][1]


async def _http_json(
    host: str,
    port: int,
    method: str,
    path: str,
    body: Any = None,
    timeout: float = 10.0,
) -> Tuple[int, Any]:
    """One JSON request over a fresh connection (the servers are one-shot).

    Returns ``(status, decoded_body)``; raises ``OSError``/``TimeoutError``
    on transport problems and ``ValueError`` on non-JSON bytes — callers
    normalise those into :class:`ReplicaUnreachable`.
    """
    payload = b""
    if body is not None:
        payload = json.dumps(body).encode("utf-8")
    request = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host}:{port}\r\n"
        f"Accept: application/json\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: close\r\n\r\n"
    ).encode("latin-1") + payload
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout
    )
    try:
        writer.write(request)
        await asyncio.wait_for(writer.drain(), timeout)
        raw = await asyncio.wait_for(reader.read(), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    head, _, rest = raw.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0].decode("latin-1", "replace")
    parts = status_line.split()
    if len(parts) < 2 or not parts[0].startswith("HTTP/"):
        raise ValueError(f"malformed response: {status_line!r}")
    status = int(parts[1])
    document = json.loads(rest.decode("utf-8")) if rest.strip() else None
    return status, document


@dataclass
class _Replica:
    """Router-side view of one service replica."""

    name: str
    url: str
    host: str = ""
    port: int = 0
    healthy: bool = True
    #: Jobs the router has submitted here and not yet observed terminal.
    inflight: int = 0
    #: Submissions ever routed here (shard-balance accounting).
    routed: int = 0
    consecutive_failures: int = 0
    last_health: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        split = urlsplit(self.url if "//" in self.url else f"http://{self.url}")
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 80


@dataclass
class _RouterJob:
    """One client-visible job and where it currently lives."""

    router_id: str
    routing_key: str
    submission_wire: Dict[str, Any]
    replica: str
    replica_job_id: str
    #: Last observed status wire document (router-id rewritten).
    last: Dict[str, Any] = field(default_factory=dict)
    terminal: bool = False
    resubmits: int = 0


class RouterService:
    """The routing/admission brain behind :class:`RouterServer`.

    Owns the ring, the per-replica budgets and the router job table; all
    methods run on the owning event loop (no locks).  An optional
    ``supervisor`` (see :class:`~repro.serve.service.ReplicaSupervisor`)
    lets the router restart replicas it declared dead.
    """

    def __init__(
        self,
        replicas: Sequence[Tuple[str, str]],
        max_inflight: int = 16,
        shed_priority: int = 0,
        retry_after_ms: float = 250.0,
        health_interval: float = 2.0,
        replica_timeout: float = 10.0,
        record_entries: int = 4096,
        vnodes: int = 64,
        supervisor: Optional[Any] = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.replicas: Dict[str, _Replica] = {
            name: _Replica(name=name, url=url) for name, url in replicas
        }
        if not self.replicas:
            raise ValueError("a router needs at least one replica")
        self.ring = HashRing(list(self.replicas), vnodes=vnodes)
        self.max_inflight = max_inflight
        #: Submissions with ``priority`` strictly below this are shed
        #: (503) instead of asked to retry (429) when their shard is full.
        self.shed_priority = shed_priority
        self.retry_after_ms = retry_after_ms
        self.health_interval = health_interval
        self.replica_timeout = replica_timeout
        self.record_entries = max(1, record_entries)
        self.supervisor = supervisor

        self._jobs: "OrderedDict[str, _RouterJob]" = OrderedDict()
        self._by_replica_job: Dict[Tuple[str, str], str] = {}
        self._ids = itertools.count(1)
        self._health_task: Optional[asyncio.Task] = None
        self._started_monotonic = 0.0

        self.counters: Dict[str, int] = {
            "submitted": 0,
            "routed": 0,
            "shed": 0,
            "backpressure": 0,
            "rehashes": 0,
            "rerouted_jobs": 0,
            "replica_failures": 0,
            "replica_restarts": 0,
            "proxy_errors": 0,
        }

    # ------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        if self._health_task is not None:
            return
        self._started_monotonic = time.monotonic()
        self._health_task = asyncio.create_task(
            self._health_loop(), name="router-health"
        )

    async def stop(self) -> None:
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        if self.supervisor is not None:
            # The fleet is router-owned: ask the replicas to exit cleanly,
            # then reap the processes.
            for replica in self.replicas.values():
                try:
                    await self._request(replica, "POST", "/v1/shutdown", {})
                except RouterError:
                    pass
            await self.supervisor.stop()

    @property
    def uptime_seconds(self) -> float:
        if not self._started_monotonic:
            return 0.0
        return time.monotonic() - self._started_monotonic

    # ------------------------------------------------------------------- api
    async def submit(self, submission: JobSubmission) -> JobStatus:
        statuses = await self.submit_many([submission])
        return statuses[0]

    async def submit_many(
        self, submissions: List[JobSubmission]
    ) -> List[JobStatus]:
        """Route a batch; the whole batch is admitted or none of it.

        All-or-nothing admission mirrors the single-server batch
        contract: a client must never learn ids for half a batch and an
        overload error for the rest.
        """
        keys = [routing_key(submission) for submission in submissions]
        plan: Dict[str, List[int]] = {}
        for index, key in enumerate(keys):
            target = self.ring.route(key)
            if target is None:
                raise RouterError(
                    503, "no healthy replicas", code="NO_REPLICAS"
                )
            plan.setdefault(target, []).append(index)

        # Admission first, atomically over the whole batch.  Distinct
        # submissions sharing a routing key count once: they will dedupe
        # into one solve on the shard.
        for name, indices in plan.items():
            replica = self.replicas[name]
            unique = len({keys[index] for index in indices})
            if replica.inflight + unique > self.max_inflight:
                lowest = min(submissions[i].priority for i in indices)
                if lowest < self.shed_priority:
                    self.counters["shed"] += len(indices)
                    raise RouterError(
                        503,
                        f"shard {name} is saturated; low-priority work shed",
                        code="SHED",
                        replica=name,
                    )
                self.counters["backpressure"] += len(indices)
                raise RouterError(
                    429,
                    f"shard {name} is saturated; retry later",
                    code="RETRY_AFTER",
                    replica=name,
                    retry_after_ms=self.retry_after_ms,
                )

        self.counters["submitted"] += len(submissions)
        results: List[Optional[JobStatus]] = [None] * len(submissions)
        for name, indices in plan.items():
            replica = self.replicas[name]
            body = [submissions[index].to_wire() for index in indices]
            status, document = await self._request(
                replica, "POST", "/v1/jobs", body
            )
            if status >= 400 or not isinstance(document, list):
                raise RouterError(
                    status if status >= 400 else 502,
                    self._error_text(document, f"replica {name} refused"),
                    code=self._error_code(document, "REPLICA_ERROR"),
                    replica=name,
                )
            for index, entry in zip(indices, document):
                results[index] = self._register(
                    submissions[index], keys[index], replica, entry
                )
        return [status for status in results if status is not None]

    def _register(
        self,
        submission: JobSubmission,
        key: str,
        replica: _Replica,
        status_wire: Dict[str, Any],
    ) -> JobStatus:
        router_id = f"g{next(self._ids):06d}-{key[:8]}"
        replica.routed += 1
        self.counters["routed"] += 1
        job = _RouterJob(
            router_id=router_id,
            routing_key=key,
            submission_wire=submission.to_wire(),
            replica=replica.name,
            replica_job_id=str(status_wire.get("job_id", "")),
        )
        self._jobs[router_id] = job
        self._by_replica_job[(replica.name, job.replica_job_id)] = router_id
        self._observe(job, status_wire, replica)
        if not job.terminal:
            replica.inflight += 1
        self._trim_jobs()
        return JobStatus.from_wire(job.last)

    async def status(self, router_id: str) -> Optional[JobStatus]:
        job = self._jobs.get(router_id)
        if job is None:
            return None
        if job.terminal:
            return JobStatus.from_wire(job.last)
        replica = self.replicas.get(job.replica)
        if replica is None or not replica.healthy:
            await self._reroute_job(job)
            return JobStatus.from_wire(job.last)
        try:
            status, document = await self._request(
                replica, "GET", f"/v1/jobs/{job.replica_job_id}"
            )
        except ReplicaUnreachable:
            await self._fail_replica(replica)
            return JobStatus.from_wire(job.last)
        if status == 200 and isinstance(document, dict):
            if self._observe(job, document, replica):
                replica.inflight = max(0, replica.inflight - 1)
        return JobStatus.from_wire(job.last)

    async def result(self, router_id: str) -> Dict[str, Any]:
        """The finished job's result document (raises RouterError else)."""
        job = self._jobs.get(router_id)
        if job is None:
            raise RouterError(404, f"unknown job {router_id!r}")
        status = await self.status(router_id)
        if status is None or status.state != "done":
            state = "unknown" if status is None else status.state
            raise RouterError(
                409,
                f"job {router_id!r} is {state}, not done",
                code="NOT_DONE",
                job=None if status is None else status.to_wire(),
            )
        replica = self.replicas.get(job.replica)
        if replica is None:
            raise RouterError(404, f"result of job {router_id!r} is gone")
        http_status, document = await self._request(
            replica, "GET", f"/v1/jobs/{job.replica_job_id}/result"
        )
        if http_status != 200 or not isinstance(document, dict):
            self.counters["proxy_errors"] += 1
            raise RouterError(
                http_status if http_status >= 400 else 502,
                self._error_text(
                    document, f"replica {job.replica} lost the result"
                ),
                code=self._error_code(document, "REPLICA_ERROR"),
            )
        return document

    async def cancel(self, router_id: str) -> Optional[JobStatus]:
        job = self._jobs.get(router_id)
        if job is None:
            return None
        if job.terminal:
            return JobStatus.from_wire(job.last)
        replica = self.replicas.get(job.replica)
        if replica is None or not replica.healthy:
            # The job is being re-routed; treat as still queued.
            return JobStatus.from_wire(job.last)
        http_status, document = await self._request(
            replica, "DELETE", f"/v1/jobs/{job.replica_job_id}"
        )
        released = False
        if isinstance(document, dict) and document.get("kind") == "job_status":
            released = self._observe(job, document, replica)
        elif (
            http_status == 409
            and isinstance(document, dict)
            and isinstance(document.get("job"), dict)
        ):
            released = self._observe(job, document["job"], replica)
        if released:
            replica.inflight = max(0, replica.inflight - 1)
        return JobStatus.from_wire(job.last)

    async def health_report(self) -> HealthReport:
        """Fleet health: ring layout, per-replica summaries, aggregates."""
        reports = await asyncio.gather(
            *(self._poll_replica(r) for r in self.replicas.values())
        )
        fleet: Dict[str, int] = {}
        warm: Dict[str, int] = {
            "exports": 0,
            "reuses": 0,
            "imports": 0,
            "evictions": 0,
            "similar_imports": 0,
            "similar_rejects": 0,
        }
        summaries: List[Dict[str, Any]] = []
        for replica, report in zip(self.replicas.values(), reports):
            summary: Dict[str, Any] = {
                "name": replica.name,
                "url": replica.url,
                "healthy": replica.healthy,
                "inflight": replica.inflight,
                "routed": replica.routed,
            }
            if report is not None:
                counters = report.counters
                for key, value in counters.items():
                    if isinstance(value, int):
                        fleet[key] = fleet.get(key, 0) + value
                store = report.store or {}
                for key, value in (store.get("warm") or {}).items():
                    if key in warm:
                        warm[key] += int(value)
                summary["counters"] = dict(counters)
                summary["queue_depth"] = report.queue_depth
                summary["workers"] = report.workers
                summary["instance"] = report.details.get("instance", "")
            summaries.append(summary)
        healthy = sum(1 for r in self.replicas.values() if r.healthy)
        return HealthReport(
            status="ok" if healthy else "degraded",
            role="router",
            uptime_seconds=self.uptime_seconds,
            queue_depth=sum(
                int(s.get("queue_depth", 0) or 0) for s in summaries
            ),
            inflight=sum(r.inflight for r in self.replicas.values()),
            workers=sum(int(s.get("workers", 0) or 0) for s in summaries),
            counters=dict(self.counters),
            store=None,
            details={
                "ring": self.ring.members(),
                "vnodes": self.ring.vnodes,
                "max_inflight": self.max_inflight,
                "shed_priority": self.shed_priority,
                "healthy_replicas": healthy,
                "fleet": fleet,
                "warm": warm,
                "shard_counts": {
                    r.name: r.routed for r in self.replicas.values()
                },
                "records": len(self._jobs),
            },
            replicas=summaries,
        )

    # ----------------------------------------------------- replica handling
    async def _request(
        self, replica: _Replica, method: str, path: str, body: Any = None
    ) -> Tuple[int, Any]:
        try:
            return await _http_json(
                replica.host,
                replica.port,
                method,
                path,
                body,
                timeout=self.replica_timeout,
            )
        except (OSError, ValueError, asyncio.TimeoutError) as exc:
            raise ReplicaUnreachable(
                replica.name, f"replica {replica.name} unreachable: {exc}"
            ) from exc

    @staticmethod
    def _error_text(document: Any, fallback: str) -> str:
        if isinstance(document, dict) and document.get("error"):
            return str(document["error"])
        return fallback

    @staticmethod
    def _error_code(document: Any, fallback: str) -> str:
        if isinstance(document, dict) and document.get("code"):
            return str(document["code"])
        return fallback

    def _observe(
        self, job: _RouterJob, status_wire: Dict[str, Any], replica: _Replica
    ) -> bool:
        """Fold a replica's status answer into the router-side record.

        Returns ``True`` when this observation is the job's transition
        into a terminal state — the moment its shard budget is released
        (the caller that *claimed* budget does so on registration, so
        claim and release pair up exactly once per placement).
        """
        document = dict(status_wire)
        document["job_id"] = job.router_id
        document["replica"] = replica.name
        was_terminal = job.terminal
        job.last = document
        job.terminal = document.get("state") in TERMINAL_STATES
        return job.terminal and not was_terminal

    def _trim_jobs(self) -> None:
        while len(self._jobs) > self.record_entries:
            evicted_id, evicted = next(iter(self._jobs.items()))
            if not evicted.terminal:
                break  # never evict a live job
            del self._jobs[evicted_id]
            self._by_replica_job.pop(
                (evicted.replica, evicted.replica_job_id), None
            )

    async def _poll_replica(
        self, replica: _Replica
    ) -> Optional[HealthReport]:
        try:
            status, document = await self._request(replica, "GET", "/healthz")
        except ReplicaUnreachable:
            return None
        if status != 200 or not isinstance(document, dict):
            return None
        try:
            report = HealthReport.from_wire(document)
        except Exception:
            return None
        replica.last_health = document
        return report

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.health_interval)
            for replica in list(self.replicas.values()):
                if not replica.healthy:
                    await self._try_revive(replica)
                    continue
                report = await self._poll_replica(replica)
                if report is None:
                    replica.consecutive_failures += 1
                    if replica.consecutive_failures >= 2:
                        await self._fail_replica(replica)
                else:
                    replica.consecutive_failures = 0
                    # Reconcile the router-side budget with reality: the
                    # count of this replica's live router jobs is the
                    # truth, decrements lost to missed polls heal here.
                    live = sum(
                        1
                        for job in self._jobs.values()
                        if job.replica == replica.name and not job.terminal
                    )
                    replica.inflight = live

    async def _fail_replica(self, replica: _Replica) -> None:
        """Declare a replica dead: re-hash and re-home its live jobs."""
        if not replica.healthy:
            return
        replica.healthy = False
        replica.inflight = 0
        self.counters["replica_failures"] += 1
        if replica.name in self.ring:
            self.ring.remove(replica.name)
            self.counters["rehashes"] += 1
        orphans = [
            job
            for job in self._jobs.values()
            if job.replica == replica.name and not job.terminal
        ]
        for job in orphans:
            await self._reroute_job(job)
        if self.supervisor is not None:
            url = await self.supervisor.restart(replica.name)
            if url:
                fresh = _Replica(name=replica.name, url=url)
                fresh.routed = replica.routed
                self.replicas[replica.name] = fresh
                self.ring.add(replica.name)
                self.counters["replica_restarts"] += 1

    async def _try_revive(self, replica: _Replica) -> None:
        """Re-admit a previously dead replica that answers health again."""
        report = await self._poll_replica(replica)
        if report is None:
            return
        replica.healthy = True
        replica.consecutive_failures = 0
        if replica.name not in self.ring:
            self.ring.add(replica.name)

    async def _reroute_job(self, job: _RouterJob) -> None:
        """Resubmit an orphaned job to the ring, keeping its router id.

        The replacement replica computes the same admission cache key
        from the stored submission, so a twin already solved (or solving)
        anywhere on the shared store dedupes instead of re-running.
        """
        target_name = self.ring.route(job.routing_key)
        if target_name is None:
            job.last = dict(
                job.last,
                state="done",
                result_status="error",
                error="every replica died before the job finished",
            )
            job.terminal = True
            return
        target = self.replicas[target_name]
        try:
            status, document = await self._request(
                target, "POST", "/v1/jobs", job.submission_wire
            )
        except ReplicaUnreachable:
            await self._fail_replica(target)
            return  # the next status poll retries on the shrunken ring
        if status >= 400 or not isinstance(document, dict):
            self.counters["proxy_errors"] += 1
            return
        self._by_replica_job.pop((job.replica, job.replica_job_id), None)
        job.replica = target.name
        job.replica_job_id = str(document.get("job_id", ""))
        job.resubmits += 1
        self._by_replica_job[(target.name, job.replica_job_id)] = job.router_id
        self.counters["rerouted_jobs"] += 1
        target.routed += 1
        self._observe(job, document, target)
        if not job.terminal:
            target.inflight += 1

class RouterServer(BaseHttpServer):
    """HTTP shell of the router — same routes, same wire, fleet behind."""

    def __init__(
        self,
        router: RouterService,
        host: str = "127.0.0.1",
        port: int = 8347,
        request_timeout: float = 30.0,
    ) -> None:
        super().__init__(host=host, port=port, request_timeout=request_timeout)
        self.router = router

    async def _start_service(self) -> None:
        await self.router.start()

    async def _stop_service(self) -> None:
        await self.router.stop()

    async def _route(self, request: HttpRequest) -> Tuple[int, bytes]:
        path, method = request.path.rstrip("/") or "/", request.method
        try:
            if path == "/healthz":
                if method != "GET":
                    return error_response(405, "healthz supports GET only")
                report = await self.router.health_report()
                return json_response(200, report.to_wire())

            if path == "/v1/jobs":
                if method != "POST":
                    return error_response(405, "submit jobs with POST /v1/jobs")
                return await self._submit(parse_json_body(request))

            if path == "/v1/shutdown":
                if method != "POST":
                    return error_response(405, "shutdown with POST /v1/shutdown")
                asyncio.get_running_loop().call_soon(self.request_shutdown)
                return json_response(
                    202,
                    {"kind": "shutdown", "v": WIRE_VERSION,
                     "status": "shutting down"},
                )

            if path.startswith("/v1/jobs/"):
                remainder = path[len("/v1/jobs/"):]
                if remainder.endswith("/result"):
                    if method != "GET":
                        return error_response(405, "fetch results with GET")
                    document = await self.router.result(
                        remainder[: -len("/result")]
                    )
                    return json_response(200, {"v": WIRE_VERSION, **document})
                if method == "GET":
                    status = await self.router.status(remainder)
                    if status is None:
                        return error_response(404, f"unknown job {remainder!r}")
                    return json_response(200, status.to_wire())
                if method == "DELETE":
                    status = await self.router.cancel(remainder)
                    if status is None:
                        return error_response(404, f"unknown job {remainder!r}")
                    if status.state != "cancelled":
                        return error_response(
                            409,
                            f"job {remainder!r} is {status.state} and can no "
                            "longer be cancelled",
                            code="NOT_CANCELLABLE",
                            job=status.to_wire(),
                        )
                    return json_response(200, status.to_wire())
                return error_response(
                    405, "job endpoints support GET and DELETE"
                )

            return error_response(404, f"unknown path {path!r}")
        except RouterError as exc:
            return error_response(exc.status, str(exc), code=exc.code,
                                  **exc.extra)

    async def _submit(self, body: Any) -> Tuple[int, bytes]:
        if isinstance(body, list):
            submissions = [JobSubmission.from_wire(entry) for entry in body]
            statuses = await self.router.submit_many(submissions)
            return json_response(
                202, [status.to_wire() for status in statuses]
            )
        status = await self.router.submit(JobSubmission.from_wire(body))
        return json_response(202, status.to_wire())
