"""The mapping service: queue, batcher, store and engine glued together.

:class:`MappingService` is the transport-free core of ``repro serve`` —
the HTTP server (:mod:`repro.serve.server`) is a thin routing shell over
it, and the tests drive it directly.  One service owns:

* a :class:`~repro.serve.queue.JobQueue` of pending submissions,
* a :class:`~repro.serve.batcher.MicroBatcher` that coalesces bursts
  into engine batches (``max_batch`` / ``max_wait_ms``),
* a :class:`~repro.serve.store.ResultStore` memoizing finished results
  by canonical cache key (in-memory LRU + the engine's on-disk cache),
* one :class:`~repro.engine.MappingEngine` whose persistent worker pool
  and warm state survive across requests, driven from a single
  dispatcher thread so the event loop never blocks on a solve.

Deduplication happens at two levels: an identical submission arriving
while its twin is queued or running attaches to the same ticket
(**in-flight dedupe** — one solve, many answers), and identical jobs
inside one micro-batch are coalesced by the engine itself.  Results are
fingerprint-identical to the equivalent ``repro map``/``repro batch``
run because every path funnels into the same ``execute_payload``.

Everything except ``engine.run`` happens on the owning event loop, so
the service needs no locks; ``engine.run`` executes on a dedicated
single worker thread and touches no service state.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import math
import time
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Mapping, Optional

from ..core.objective import CostWeights
from ..engine import MappingEngine, MappingJob
from ..engine.jobs import payload_cache_key, warm_state_key
from ..ilp import SolveContext, resolve_backend
from ..ilp.errors import ModelError
from ..io.serialize import SerializationError, board_from_dict, design_from_dict
from ..io.serve import (
    STATE_CANCELLED,
    STATE_DONE,
    STATE_EXPIRED,
    STATE_QUEUED,
    STATE_RUNNING,
    HealthReport,
    JobStatus,
    JobSubmission,
)
from .batcher import MicroBatcher
from .queue import JobQueue, QueuedTicket
from .signature import (
    signatures_compatible,
    signatures_equal_shape,
    structural_signature,
)
from .store import TIER_MEMORY, ResultStore, WarmStateStore

__all__ = [
    "ServeError",
    "MappingService",
    "ReplicaSupervisor",
    "warm_state_key",  # re-exported from repro.engine.jobs
]

#: Finished job records (and their result documents) retained for client
#: pickup; the oldest fall off first.
DEFAULT_RECORD_ENTRIES = 1024

#: Per-job latency records kept for the serve artifact's percentiles.
_METRICS_WINDOW = 4096


class ServeError(Exception):
    """A submission the service refuses (bad board/design/solver/mode)."""


def _document_gap(document: Optional[Dict[str, Any]]) -> Optional[float]:
    """Certified gap of a fast-mode result document (``None`` otherwise)."""
    if not document:
        return None
    stats = document.get("solve_stats") or {}
    if not isinstance(stats, dict) or stats.get("mode") != "fast":
        return None
    gap = stats.get("gap")
    if isinstance(gap, (int, float)) and math.isfinite(gap):
        return float(gap)
    return None


class MappingService:
    """Accepts mapping submissions and serves batched, memoized results."""

    def __init__(
        self,
        jobs: int = 1,
        max_batch: int = 4,
        max_wait_ms: float = 25.0,
        cache_dir: Optional[str] = None,
        memory_entries: int = 256,
        disk_entries: Optional[int] = None,
        record_entries: int = DEFAULT_RECORD_ENTRIES,
        retries: int = 0,
        default_timeout: Optional[float] = None,
        mp_context: Optional[str] = None,
        engine: Optional[MappingEngine] = None,
        instance_name: str = "",
        warm_sharing: bool = False,
    ) -> None:
        if engine is None:
            # The dispatcher runs the engine from a worker thread; forking
            # a multi-threaded process is deprecated (3.12+) and unsafe,
            # so parallel serving defaults to spawn-based workers.
            if mp_context is None and jobs > 1:
                mp_context = "spawn"
            engine = MappingEngine(
                jobs=jobs,
                cache_dir=cache_dir,
                retries=retries,
                timeout=default_timeout,
                mp_context=mp_context,
            )
        self.engine = engine
        if self.engine.cache is not None and disk_entries is not None:
            # Bound the on-disk tier: a long-lived server must not grow
            # its result directory forever (put() trims past the bound).
            if disk_entries < 1:
                raise ValueError("disk_entries must be >= 1 (or None)")
            self.engine.cache.max_entries = disk_entries
        self.queue = JobQueue()
        self.batcher = MicroBatcher(self.queue, max_batch, max_wait_ms)
        self.store = ResultStore(memory_entries=memory_entries, disk=engine.cache)
        self.record_entries = max(1, record_entries)
        #: This replica's name in a sharded deployment (stamps warm-state
        #: exports and the health report); empty for a standalone service.
        self.instance = instance_name
        #: Cross-replica warm-state exchange, enabled for sharded
        #: deployments whose replicas share one cache directory.  Exact
        #: pipeline jobs export their final chain context here and seed
        #: their solves from whatever a sibling exported first.
        self.warm: Optional[WarmStateStore] = None
        if warm_sharing and self.engine.cache is not None:
            self.warm = WarmStateStore(
                self.engine.cache.directory / "_warm", instance=instance_name
            )

        self._ids = itertools.count(1)
        self._records: Dict[str, JobStatus] = {}
        self._documents: Dict[str, Dict[str, Any]] = {}
        self._finished_order: "OrderedDict[str, None]" = OrderedDict()
        self._ticket_for: Dict[str, QueuedTicket] = {}
        self._inflight: Dict[str, QueuedTicket] = {}

        self.counters: Dict[str, int] = {
            "submitted": 0,
            "completed": 0,
            "deduped": 0,
            "memory_hits": 0,
            "disk_hits": 0,
            "cancelled": 0,
            "expired": 0,
            "batches": 0,
            "result_ok": 0,
            "result_failed": 0,
            "result_error": 0,
            "result_timeout": 0,
            "fast_jobs": 0,
            "warm_seeded": 0,
            "warm_imports": 0,
            "warm_exports": 0,
            "similar_imports": 0,
            "similar_rejects": 0,
        }
        self.batch_sizes: deque = deque(maxlen=_METRICS_WINDOW)
        self.job_records: deque = deque(maxlen=_METRICS_WINDOW)

        self._dispatcher: Optional[asyncio.Task] = None
        self._engine_thread: Optional[ThreadPoolExecutor] = None
        self._started_at = 0.0
        self._started_monotonic = 0.0

    # ------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        """Bring up the dispatcher and the persistent worker pool."""
        if self._dispatcher is not None:
            return
        self._started_at = time.time()
        self._started_monotonic = time.monotonic()
        self.engine.start_persistent()
        self._engine_thread = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-engine"
        )
        self._dispatcher = asyncio.create_task(
            self._dispatch_loop(), name="serve-dispatcher"
        )

    async def stop(self) -> None:
        """Finish the in-flight batch, then tear everything down."""
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        if self._engine_thread is not None:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(
                self._engine_thread, self.engine.stop_persistent
            )
            self._engine_thread.shutdown(wait=True)
            self._engine_thread = None

    @property
    def uptime_seconds(self) -> float:
        if not self._started_monotonic:
            return 0.0
        return time.monotonic() - self._started_monotonic

    # ------------------------------------------------------------------- api
    def submit(self, submission: JobSubmission) -> JobStatus:
        """Admit one submission; returns its (possibly already final) status.

        Raises :class:`ServeError` when the submission cannot be turned
        into an executable job (unknown board schema, bad weights,
        unregistered solver) — the HTTP layer maps that to a 400.
        """
        return self._admit_submission(submission, self._build_job(submission))

    def submit_many(self, submissions: List[JobSubmission]) -> List[JobStatus]:
        """Admit a batch atomically: validate *every* submission first.

        Either the whole list is admitted or :class:`ServeError` is
        raised before anything is enqueued — a bad entry mid-list must
        not leave earlier entries running as orphans the client never
        got ids for.
        """
        jobs = [self._build_job(submission) for submission in submissions]
        return [
            self._admit_submission(submission, job)
            for submission, job in zip(submissions, jobs)
        ]

    def _admit_submission(
        self, submission: JobSubmission, job: MappingJob
    ) -> JobStatus:
        payload = job.to_payload()
        if payload.get("timeout") is None:
            payload["timeout"] = self.engine.timeout
        key = payload_cache_key(payload)
        job_id = f"j{next(self._ids):06d}-{key[:8]}"
        now = time.time()
        self.counters["submitted"] += 1
        if submission.mode == "fast":
            self.counters["fast_jobs"] += 1

        status = JobStatus(
            job_id=job_id,
            state=STATE_QUEUED,
            label=job.display_label(),
            priority=submission.priority,
            cache_key=key,
            submitted_at=now,
        )

        document, tier = self.store.lookup(key)
        if document is not None:
            # Served straight from the store: the job never touches the
            # queue.  A disk-tier hit may be work another process finished
            # (a batch CLI run, a sibling replica on the shared cache
            # directory) — that is the cross-shard dedupe path.
            if tier == TIER_MEMORY:
                self.counters["memory_hits"] += 1
            else:
                self.counters["disk_hits"] += 1
            status.state = STATE_DONE
            status.cache_hit = True
            status.started_at = now
            status.finished_at = time.time()
            status.result_status = document.get("status", "")
            status.objective = document.get("objective")
            status.gap = _document_gap(document)
            status.fingerprint = document.get("fingerprint")
            status.error = document.get("error", "")
            self._records[job_id] = status
            self._documents[job_id] = document
            self._note_finished(job_id, status, document)
            return status

        ticket = self._inflight.get(key)
        if ticket is not None and not ticket.cancelled:
            # In-flight dedupe: ride the identical job already underway.
            ticket.followers.append(job_id)
            self.counters["deduped"] += 1
            status.deduped = True
            status.state = STATE_RUNNING if ticket.running else STATE_QUEUED
            if ticket.running:
                status.started_at = now
            else:
                # The follower's own serving metadata still counts: a
                # higher priority promotes the shared solve, and its own
                # queue deadline is tracked per follower.
                if submission.priority > ticket.priority and self.queue.reprioritize(
                    ticket.job_id, submission.priority
                ):
                    primary = self._records.get(ticket.job_id)
                    if primary is not None and not primary.terminal:
                        primary.priority = submission.priority
                if submission.deadline_ms is not None:
                    ticket.follower_deadlines[job_id] = (
                        time.monotonic() + submission.deadline_ms / 1000.0
                    )
            self._ticket_for[job_id] = ticket
            self._records[job_id] = status
            return status

        deadline_at = None
        if submission.deadline_ms is not None:
            deadline_at = time.monotonic() + submission.deadline_ms / 1000.0
        # Warm seeding happens strictly *after* the admission key was
        # computed from the unseeded payload: whether a warm seed is
        # available varies per replica and over time, and must never
        # change which submissions dedupe onto each other.  Only exact
        # pipeline jobs participate — a fast-mode solve seeded with an
        # imported incumbent could legitimately return a different
        # (still-certified) mapping, and served fingerprints must stay
        # identical to the direct ``repro batch`` path.
        warm_key = ""
        signature: Optional[Dict[str, Any]] = None
        if self.warm is not None and job.mode == "pipeline":
            warm_key = warm_state_key(payload)
            signature = structural_signature(payload)
            warm = self.warm.get(warm_key)
            if warm is None:
                # Exact miss: fall back to the structurally nearest
                # compatible neighbor's state (near-duplicate traffic).
                warm = self._similar_seed(payload, signature, warm_key)
            if warm is not None:
                self.counters["warm_seeded"] += 1
                if warm.get("source") != self.instance:
                    self.counters["warm_imports"] += 1
                job = dataclasses.replace(
                    job,
                    chain_context=warm["chain_context"],
                    export_context=True,
                )
            else:
                job = dataclasses.replace(job, export_context=True)
        ticket = QueuedTicket(
            job_id=job_id,
            mapping_job=job,
            cache_key=key,
            priority=submission.priority,
            deadline_at=deadline_at,
            warm_key=warm_key,
            signature=signature,
        )
        self._inflight[key] = ticket
        self._ticket_for[job_id] = ticket
        self._records[job_id] = status
        self.queue.put(ticket)
        return status

    def status(self, job_id: str) -> Optional[JobStatus]:
        """Current status of a job, or ``None`` for an unknown id."""
        self._sweep_expired()
        return self._records.get(job_id)

    def result(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The finished job's result document (``None`` if unavailable)."""
        document = self._documents.get(job_id)
        if document is not None:
            return document
        record = self._records.get(job_id)
        if record is not None and record.cache_key:
            return self.store.get(record.cache_key)
        return None

    def cancel(self, job_id: str) -> Optional[JobStatus]:
        """Cancel a queued job.

        Returns the updated status; ``None`` for an unknown id.  A job
        already running (or finished) is *not* cancelled — the caller
        sees its unchanged, non-cancelled status and can tell from
        ``state``.  Cancelling one deduped follower leaves its siblings
        (and the shared solve) untouched.
        """
        record = self._records.get(job_id)
        if record is None:
            return None
        if record.terminal or record.state == STATE_RUNNING:
            return record
        ticket = self._ticket_for.get(job_id)
        if ticket is None or ticket.running:
            return record
        if ticket.job_id == job_id and not ticket.followers:
            ticket.cancelled = True
            self.queue.cancel(job_id)
            if self._inflight.get(ticket.cache_key) is ticket:
                del self._inflight[ticket.cache_key]
        elif ticket.job_id == job_id:
            # The primary leaves but followers still want the result: the
            # ticket keeps solving, only this record is released.
            pass
        else:
            try:
                ticket.followers.remove(job_id)
            except ValueError:
                pass
            ticket.follower_deadlines.pop(job_id, None)
        self.counters["cancelled"] += 1
        record.state = STATE_CANCELLED
        record.finished_at = time.time()
        self._note_finished(job_id, record, None)
        return record

    def health_report(self) -> HealthReport:
        """Typed liveness/diagnostics report of the ``/healthz`` endpoint."""
        self._sweep_expired()
        sizes = list(self.batch_sizes)
        store_stats = self.store.stats()
        if self.warm is not None:
            # The store counts the exchange (exports/reuses/imports/
            # evictions); the service owns the similarity-path verdicts.
            store_stats["warm"] = {
                **self.warm.stats(),
                "similar_imports": self.counters["similar_imports"],
                "similar_rejects": self.counters["similar_rejects"],
            }
        return HealthReport(
            status="ok",
            role="service",
            uptime_seconds=self.uptime_seconds,
            queue_depth=self.queue.depth,
            inflight=len(self._inflight),
            workers=self.engine.jobs,
            counters=dict(self.counters),
            store=store_stats,
            details={
                "instance": self.instance,
                "mp_context": self.engine.mp_context,
                "max_batch": self.batcher.max_batch,
                "max_wait_ms": self.batcher.max_wait_ms,
                "batches": {
                    "count": self.counters["batches"],
                    "mean_size": (sum(sizes) / len(sizes)) if sizes else None,
                    "max_size": max(sizes) if sizes else None,
                },
                "records": len(self._records),
            },
        )

    def artifact(self) -> Dict[str, Any]:
        """Throughput/latency artifact document (``BENCH_serve.json``)."""
        from ..bench.artifacts import serve_artifact

        return serve_artifact(
            records=list(self.job_records),
            elapsed=self.uptime_seconds,
            jobs=self.engine.jobs,
            max_batch=self.batcher.max_batch,
            max_wait_ms=self.batcher.max_wait_ms,
            counters=dict(self.counters),
            batch_sizes=list(self.batch_sizes),
        )

    # ------------------------------------------------------------- internals
    def _build_job(self, submission: JobSubmission) -> MappingJob:
        try:
            board = board_from_dict(submission.board)
            design = design_from_dict(submission.design)
        except SerializationError as exc:
            raise ServeError(f"bad submission: {exc}") from exc
        try:
            weights = CostWeights(**dict(submission.weights))
        except TypeError as exc:
            raise ServeError(f"bad submission weights: {exc}") from exc
        try:
            resolve_backend(submission.solver)
        except ModelError as exc:
            raise ServeError(f"bad submission solver: {exc}") from exc
        try:
            return MappingJob(
                board=board,
                design=design,
                weights=weights,
                solver=submission.solver,
                solver_options=dict(submission.solver_options),
                capacity_mode=submission.capacity_mode,
                port_estimation=submission.port_estimation,
                warm_start=submission.warm_start,
                warm_retries=submission.warm_retries,
                mode=submission.mode,
                gap_limit=submission.gap_limit,
                label=submission.display_label(),
                timeout=submission.timeout,
            )
        except (TypeError, ValueError) as exc:
            raise ServeError(f"bad submission: {exc}") from exc

    def _similar_seed(
        self,
        payload: Mapping[str, Any],
        signature: Optional[Dict[str, Any]],
        warm_key: str,
    ) -> Optional[Dict[str, Any]]:
        """Seed document transplanted from the nearest compatible neighbor.

        The similarity path of the warm-state store: on an exact-identity
        miss, rank the stored entries by structural-signature similarity,
        guard the best candidate (hard-compatibility bucket, SOS-layout
        agreement, dimension check for the basis), and transplant the
        transferable slice of its chain context onto this job's model.
        Every guard failure is a *silent cold fallback* — counted in
        ``similar_rejects``, never an error — and a successful transplant
        counts in ``similar_imports``.  Served mappings stay
        fingerprint-identical either way: imported seeds only steer
        solver effort, the per-structure admissibility and
        strict-improvement guards downstream decide adoption.
        """
        if self.warm is None or signature is None:
            return None
        neighbor = self.warm.find_similar(signature, exclude=(warm_key,))
        if neighbor is None:
            return None
        neighbor_signature = neighbor.get("signature") or {}
        if not signatures_compatible(signature, neighbor_signature):
            # A sketch collision whose SOS layouts disagree: same-named
            # structures with different geometry must never transplant.
            self.counters["similar_rejects"] += 1
            return None
        design = payload.get("design") or {}
        board = payload.get("board") or {}
        chain = SolveContext.transplant_chain_dict(
            neighbor.get("chain_context") or {},
            structures=[
                entry.get("name")
                for entry in design.get("data_structures") or []
            ],
            bank_types=[
                bank.get("name") for bank in board.get("bank_types") or []
            ],
            keep_basis=signatures_equal_shape(signature, neighbor_signature),
        )
        if chain is None:
            # Dimension/overlap mismatch left nothing transferable.
            self.counters["similar_rejects"] += 1
            return None
        self.counters["similar_imports"] += 1
        return {"source": neighbor.get("source"), "chain_context": chain}

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            tickets = await self.batcher.collect()
            live = self._admit(tickets)
            if not live:
                continue
            now = time.time()
            for ticket in live:
                ticket.running = True
                for job_id in ticket.job_ids():
                    record = self._records.get(job_id)
                    if record is not None and not record.terminal:
                        record.state = STATE_RUNNING
                        record.started_at = now
            self.counters["batches"] += 1
            self.batch_sizes.append(len(live))
            jobs = [ticket.mapping_job for ticket in live]
            future = loop.run_in_executor(
                self._engine_thread, self.engine.run, jobs
            )
            try:
                results = await asyncio.shield(future)
            except asyncio.CancelledError:
                # Shutdown mid-batch: let the engine finish and record the
                # outcomes so no accepted job is silently dropped — even
                # when the pool died, the jobs must reach a terminal state
                # and stop() must still tear the engine down cleanly.
                try:
                    results = await future
                except Exception as exc:
                    for ticket in live:
                        self._finish_error(ticket, exc)
                else:
                    for ticket, result in zip(live, results):
                        self._finish(ticket, result)
                raise
            except Exception as exc:
                for ticket in live:
                    self._finish_error(ticket, exc)
                continue
            for ticket, result in zip(live, results):
                self._finish(ticket, result)

    def _admit(self, tickets: List[QueuedTicket]) -> List[QueuedTicket]:
        """Filter a popped batch down to tickets that should be solved."""
        live = []
        now = time.monotonic()
        for ticket in tickets:
            if ticket.cancelled:
                # Status bookkeeping already happened at cancel time.  A
                # resubmission of the same job may own the in-flight slot
                # by now — only this ticket's own registration is dropped.
                if self._inflight.get(ticket.cache_key) is ticket:
                    del self._inflight[ticket.cache_key]
                continue
            if self._apply_deadlines(ticket, now):
                continue
            live.append(ticket)
        return live

    def _apply_deadlines(self, ticket: QueuedTicket, now: float) -> bool:
        """Expire the individual jobs on ``ticket`` whose deadlines passed.

        Deadlines are per *job*, not per ticket: the primary's deadline
        expiring must not take down deduped followers that asked to wait
        (and vice versa).  Returns ``True`` when nobody is interested in
        the result any more and the ticket itself was discarded.
        """
        if ticket.running or ticket.cancelled:
            return False
        for job_id, deadline_at in list(ticket.follower_deadlines.items()):
            if now >= deadline_at:
                del ticket.follower_deadlines[job_id]
                if job_id in ticket.followers:
                    ticket.followers.remove(job_id)
                self._expire_record(job_id)
        if ticket.deadline_at is not None and now >= ticket.deadline_at:
            self._expire_record(ticket.job_id)
            # The primary no longer drives the ticket's lifetime; any
            # surviving followers keep the solve alive.
            ticket.deadline_at = None
        for job_id in ticket.job_ids():
            record = self._records.get(job_id)
            if record is not None and not record.terminal:
                return False
        ticket.cancelled = True
        self.queue.cancel(ticket.job_id)
        if self._inflight.get(ticket.cache_key) is ticket:
            del self._inflight[ticket.cache_key]
        return True

    def _expire_record(self, job_id: str) -> None:
        record = self._records.get(job_id)
        if record is None or record.terminal:
            return
        self.counters["expired"] += 1
        record.state = STATE_EXPIRED
        record.finished_at = time.time()
        record.error = "deadline expired before the job was scheduled"
        self._note_finished(job_id, record, None)
        self._ticket_for.pop(job_id, None)

    def _sweep_expired(self) -> None:
        now = time.monotonic()
        for ticket in list(self._inflight.values()):
            self._apply_deadlines(ticket, now)

    def _finish(self, ticket: QueuedTicket, result) -> None:
        document = result.to_dict()
        self.store.put(ticket.cache_key, document)
        if (
            self.warm is not None
            and ticket.warm_key
            and result.status == "ok"
            and isinstance(document.get("chain_context"), dict)
        ):
            try:
                if self.warm.put(
                    ticket.warm_key,
                    document["chain_context"],
                    signature=ticket.signature,
                ):
                    self.counters["warm_exports"] += 1
            except OSError:
                pass  # warm sharing is an optimisation, never a failure
        if self._inflight.get(ticket.cache_key) is ticket:
            del self._inflight[ticket.cache_key]
        if result.cache_hit:
            self.counters["disk_hits"] += 1
        self.counters[f"result_{result.status}"] = (
            self.counters.get(f"result_{result.status}", 0) + 1
        )
        now = time.time()
        for job_id in ticket.job_ids():
            record = self._records.get(job_id)
            if record is None or record.terminal:
                continue
            record.state = STATE_DONE
            record.finished_at = now
            record.result_status = result.status
            record.objective = result.objective
            record.gap = _document_gap(document)
            record.fingerprint = result.fingerprint
            record.error = result.error
            record.cache_hit = result.cache_hit
            self._documents[job_id] = document
            self._note_finished(job_id, record, document)
            self._ticket_for.pop(job_id, None)

    def _finish_error(self, ticket: QueuedTicket, exc: Exception) -> None:
        if self._inflight.get(ticket.cache_key) is ticket:
            del self._inflight[ticket.cache_key]
        now = time.time()
        self.counters["result_error"] += 1
        for job_id in ticket.job_ids():
            record = self._records.get(job_id)
            if record is None or record.terminal:
                continue
            record.state = STATE_DONE
            record.finished_at = now
            record.result_status = "error"
            record.error = f"{type(exc).__name__}: {exc}"
            self._note_finished(job_id, record, None)
            self._ticket_for.pop(job_id, None)

    def _note_finished(
        self,
        job_id: str,
        record: JobStatus,
        document: Optional[Dict[str, Any]],
    ) -> None:
        """Record metrics for a terminal job and bound the record tables."""
        if record.state == STATE_DONE:
            self.counters["completed"] += 1
            self.job_records.append(
                {
                    "job_id": job_id,
                    "label": record.label,
                    "status": record.result_status,
                    "latency_ms": record.latency_ms,
                    "solve_ms": (
                        float(document.get("wall_time", 0.0)) * 1000.0
                        if document
                        else 0.0
                    ),
                    "cache_hit": record.cache_hit,
                    "deduped": record.deduped,
                    "fingerprint": record.fingerprint,
                }
            )
        self._finished_order[job_id] = None
        self._finished_order.move_to_end(job_id)
        while len(self._finished_order) > self.record_entries:
            evicted, _ = self._finished_order.popitem(last=False)
            self._records.pop(evicted, None)
            self._documents.pop(evicted, None)
            self._ticket_for.pop(evicted, None)


class ReplicaSupervisor:
    """Spawns and supervises a fleet of ``repro serve`` replica processes.

    Each replica is a full single-process :class:`MappingService` (own
    engine, own event loop) started as ``python -m repro serve --port 0``
    with a shared ``--cache-dir`` — the shared key space that makes
    cross-shard dedupe and warm-state exchange work.  The supervisor
    parses each replica's "serving mapping jobs on http://..." banner to
    learn its ephemeral port, keeps draining its stdout, and can restart
    a replica the router declared dead.
    """

    def __init__(
        self,
        count: int,
        cache_dir: str,
        jobs: int = 1,
        max_batch: int = 4,
        max_wait_ms: float = 25.0,
        time_limit: Optional[float] = None,
        host: str = "127.0.0.1",
        boot_timeout: float = 60.0,
        name_prefix: str = "replica",
    ) -> None:
        if count < 1:
            raise ValueError("a fleet needs at least one replica")
        self.count = count
        self.cache_dir = cache_dir
        self.jobs = jobs
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.time_limit = time_limit
        self.host = host
        self.boot_timeout = boot_timeout
        self.name_prefix = name_prefix
        self._procs: Dict[str, asyncio.subprocess.Process] = {}
        self._urls: Dict[str, str] = {}
        self._drains: List[asyncio.Task] = []

    def _command(self, name: str) -> List[str]:
        import sys

        command = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            self.host,
            "--port",
            "0",
            "--cache-dir",
            str(self.cache_dir),
            "--jobs",
            str(self.jobs),
            "--max-batch",
            str(self.max_batch),
            "--max-wait-ms",
            str(self.max_wait_ms),
            "--instance-name",
            name,
        ]
        if self.time_limit is not None:
            command += ["--time-limit", str(self.time_limit)]
        return command

    def _env(self) -> Dict[str, str]:
        """Child environment with the ``repro`` package importable."""
        import os
        import sys
        from pathlib import Path

        env = dict(os.environ)
        package_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH", "")
        if package_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                f"{package_root}{os.pathsep}{existing}"
                if existing
                else package_root
            )
        return env

    async def _spawn(self, name: str) -> str:
        process = await asyncio.create_subprocess_exec(
            *self._command(name),
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.DEVNULL,
            env=self._env(),
        )
        url = ""
        deadline = time.monotonic() + self.boot_timeout
        assert process.stdout is not None
        while time.monotonic() < deadline:
            try:
                line = await asyncio.wait_for(
                    process.stdout.readline(),
                    timeout=max(0.1, deadline - time.monotonic()),
                )
            except asyncio.TimeoutError:
                break
            if not line:
                break
            text = line.decode("utf-8", "replace")
            marker = "serving mapping jobs on "
            if marker in text:
                url = text.split(marker, 1)[1].split()[0]
                break
        if not url:
            try:
                process.terminate()
            except ProcessLookupError:
                pass
            await process.wait()
            raise RuntimeError(
                f"replica {name} did not report a serving URL within "
                f"{self.boot_timeout:.0f}s"
            )
        self._procs[name] = process
        self._urls[name] = url
        # Keep the pipe drained so a chatty replica never blocks on a
        # full stdout buffer.
        self._drains.append(
            asyncio.create_task(self._drain(process), name=f"drain-{name}")
        )
        return url

    @staticmethod
    async def _drain(process: asyncio.subprocess.Process) -> None:
        assert process.stdout is not None
        try:
            while await process.stdout.readline():
                pass
        except (asyncio.CancelledError, ConnectionError, OSError):
            pass

    async def start(self) -> List[Any]:
        """Boot the fleet; returns ``[(name, url), ...]``."""
        endpoints = []
        for index in range(1, self.count + 1):
            name = f"{self.name_prefix}-{index}"
            endpoints.append((name, await self._spawn(name)))
        return endpoints

    def alive(self, name: str) -> bool:
        process = self._procs.get(name)
        return process is not None and process.returncode is None

    async def restart(self, name: str) -> str:
        """Restart a dead replica; returns its new URL ('' on failure)."""
        process = self._procs.get(name)
        if process is not None and process.returncode is None:
            try:
                process.terminate()
            except ProcessLookupError:
                pass
            await process.wait()
        try:
            return await self._spawn(name)
        except (RuntimeError, OSError):
            return ""

    async def stop(self) -> None:
        """Terminate every replica and reap the processes."""
        for task in self._drains:
            task.cancel()
        self._drains.clear()
        for process in self._procs.values():
            if process.returncode is None:
                try:
                    process.terminate()
                except ProcessLookupError:
                    pass
        for process in self._procs.values():
            try:
                await asyncio.wait_for(process.wait(), timeout=10.0)
            except asyncio.TimeoutError:
                process.kill()
                await process.wait()
        self._procs.clear()
        self._urls.clear()
