"""Minimal HTTP/1.1 framing over asyncio streams.

The serving layer deliberately depends on nothing outside the standard
library, and the stdlib has no asyncio HTTP server — so this module
implements the small slice of HTTP the job API needs: request-line +
header parsing with hard size limits, ``Content-Length`` bodies, JSON
helpers and response formatting.  Connections are one-shot
(``Connection: close``), which keeps the state machine trivial; the
bottleneck of this service is ILP solves, never TCP handshakes.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from ..io.serve import WIRE_VERSION

__all__ = [
    "HttpRequest",
    "ProtocolError",
    "read_request",
    "format_response",
    "json_response",
    "error_response",
    "parse_json_body",
]

#: Hard limits; a request breaching them is answered 400/413 and dropped.
MAX_REQUEST_LINE = 8 * 1024
MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 32 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}


class ProtocolError(Exception):
    """A malformed or oversized request; carries the HTTP status to send."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""


async def read_request(reader) -> Optional[HttpRequest]:
    """Parse one request from ``reader``; ``None`` on clean EOF.

    Stream-level failures are normalised: an overlong line trips the
    ``StreamReader`` limit (``LimitOverrunError``/``ValueError``) before
    our own byte checks can, and a body shorter than its declared
    ``Content-Length`` raises ``IncompleteReadError`` — all of these are
    malformed *input*, reported as 400/413, never as a 500 server bug.
    """
    try:
        line = await reader.readline()
    except (ConnectionError, OSError):
        return None
    except (asyncio.LimitOverrunError, ValueError):
        raise ProtocolError(400, "request line too long")
    if not line:
        return None
    if len(line) > MAX_REQUEST_LINE:
        raise ProtocolError(400, "request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise ProtocolError(400, "malformed request line")
    method, target, _version = parts
    split = urlsplit(target)
    query = dict(parse_qsl(split.query))

    headers: Dict[str, str] = {}
    total = 0
    while True:
        try:
            line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            raise ProtocolError(400, "header line too long")
        if not line:
            raise ProtocolError(400, "unexpected EOF in headers")
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise ProtocolError(400, "headers too large")
        if line in (b"\r\n", b"\n"):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(400, "malformed header line")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            size = int(length)
        except ValueError:
            raise ProtocolError(400, "bad Content-Length")
        if size < 0:
            raise ProtocolError(400, "bad Content-Length")
        if size > MAX_BODY_BYTES:
            raise ProtocolError(413, "request body too large")
        try:
            body = await reader.readexactly(size)
        except asyncio.IncompleteReadError:
            raise ProtocolError(400, "request body shorter than Content-Length")
    elif headers.get("transfer-encoding"):
        raise ProtocolError(400, "chunked requests are not supported")

    return HttpRequest(
        method=method.upper(),
        path=split.path or "/",
        query=query,
        headers=headers,
        body=body,
    )


def parse_json_body(request: HttpRequest) -> Any:
    """Decode the request body as JSON (400 on anything else)."""
    if not request.body:
        raise ProtocolError(400, "expected a JSON request body")
    try:
        return json.loads(request.body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(400, f"request body is not valid JSON: {exc}")


def format_response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """Serialise one complete HTTP/1.1 response."""
    reason = _REASONS.get(status, "Unknown")
    headers = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n"
    )
    for name, value in (extra_headers or {}).items():
        headers += f"{name}: {value}\r\n"
    return (headers + "\r\n").encode("latin-1") + body


def json_response(status: int, document: Any) -> Tuple[int, bytes]:
    """JSON-encode ``document`` for :func:`format_response`."""
    return status, (json.dumps(document, indent=2) + "\n").encode("utf-8")


def error_response(
    status: int, message: str, code: str = "", **extra: Any
) -> Tuple[int, bytes]:
    """A structured, versioned error body shared by every serve endpoint.

    ``code`` is the machine-readable reason (``"UNSUPPORTED_VERSION"``,
    ``"RETRY_AFTER"``, ``"SHED"``, ...); extra keyword fields — for
    example ``supported_versions`` or ``retry_after_ms`` — ride along so
    a client can act on the error without parsing prose.
    """
    document: Dict[str, Any] = {
        "kind": "error",
        "v": WIRE_VERSION,
        "error": message,
        "status": status,
    }
    if code:
        document["code"] = code
    document.update(extra)
    return json_response(status, document)
