"""Priority queue of pending mapping requests.

The :class:`JobQueue` is the waiting room between the HTTP front end and
the engine dispatcher: submissions enter as :class:`QueuedTicket` records
(one per *unique* mapping job — duplicates attach as followers at the
service layer), and the dispatcher's micro-batcher pops them back out in
priority order.

Design constraints:

* **Single event loop.**  ``put``/``cancel`` are plain synchronous calls
  (they run on the loop that owns the service); only ``get`` awaits.
* **Priorities with FIFO ties.**  Higher ``priority`` pops first; equal
  priorities keep submission order via a monotonically increasing
  sequence number, so two equal-priority clients are served fairly.
* **Lazy removal.**  Cancelling marks the ticket; the ticket leaves the
  heap when it reaches the front.  ``get`` therefore returns *any*
  ticket — the caller (the service's admission step) is responsible for
  discarding cancelled or deadline-expired ones, because that is where
  the job-status bookkeeping lives.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["QueuedTicket", "JobQueue"]


@dataclass
class QueuedTicket:
    """One unique mapping job waiting for (or undergoing) execution."""

    job_id: str
    #: The executable job and its canonical hash, prebuilt at submission
    #: time so admission errors surface to the submitting client.
    mapping_job: Any
    cache_key: str
    priority: int = 0
    #: ``time.monotonic()`` moment after which the job is expired rather
    #: than solved (``None``: wait forever).
    deadline_at: Optional[float] = None
    #: Job ids of identical submissions deduped onto this ticket; they
    #: all receive this ticket's result.
    followers: List[str] = field(default_factory=list)
    #: Queue deadlines of individual followers (``job_id ->`` monotonic
    #: moment): a follower whose deadline passes before the shared solve
    #: starts is expired on its own, without touching its siblings.
    follower_deadlines: Dict[str, float] = field(default_factory=dict)
    cancelled: bool = False
    #: Set once the dispatcher hands the ticket to the engine; from then
    #: on cancellation and expiry are refused (the solve is in flight).
    running: bool = False
    #: Warm-state key of the job's identity when warm sharing is active
    #: (empty otherwise); the finished solve exports its chain context
    #: under this key for sibling replicas to seed from.
    warm_key: str = ""
    #: Structural signature of the job's payload (when warm sharing is
    #: active); exported alongside the chain context so near-duplicate
    #: submissions can find this entry by similarity.
    signature: Optional[Dict[str, Any]] = None

    def job_ids(self) -> List[str]:
        return [self.job_id, *self.followers]

    def expired(self, now: Optional[float] = None) -> bool:
        if self.deadline_at is None or self.running:
            return False
        return (time.monotonic() if now is None else now) >= self.deadline_at


class JobQueue:
    """Priority queue with cancellation and deadline bookkeeping."""

    def __init__(self) -> None:
        # Heap entries are [neg_priority, seq, ticket, valid]; a
        # reprioritized ticket invalidates its old entry and pushes a new
        # one, so the heap never needs in-place rebalancing.
        self._heap: List[list] = []
        self._entries: Dict[str, list] = {}
        self._seq = itertools.count()
        self._wakeup = asyncio.Event()
        self._by_id: Dict[str, QueuedTicket] = {}

    def __len__(self) -> int:
        return len(self._by_id)

    @property
    def depth(self) -> int:
        """Live (not yet popped, not cancelled) tickets."""
        return sum(1 for t in self._by_id.values() if not t.cancelled)

    def put(self, ticket: QueuedTicket) -> None:
        """Enqueue a ticket (synchronous; wakes a blocked ``get``)."""
        entry = [-ticket.priority, next(self._seq), ticket, True]
        heapq.heappush(self._heap, entry)
        self._by_id[ticket.job_id] = ticket
        self._entries[ticket.job_id] = entry
        self._wakeup.set()

    async def get(self) -> QueuedTicket:
        """Pop the highest-priority ticket, waiting while the queue is empty.

        Cancelled and expired tickets are returned like any other — the
        caller discards them — but they no longer count as queued.
        """
        while True:
            ticket = self.get_nowait()
            if ticket is not None:
                return ticket
            self._wakeup.clear()
            await self._wakeup.wait()

    def get_nowait(self) -> Optional[QueuedTicket]:
        """Pop the next ticket without waiting; ``None`` when empty."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if not entry[3]:  # superseded by a reprioritized entry
                continue
            ticket = entry[2]
            self._by_id.pop(ticket.job_id, None)
            self._entries.pop(ticket.job_id, None)
            return ticket
        return None

    def reprioritize(self, job_id: str, priority: int) -> bool:
        """Raise a queued ticket's priority (a deduped follower outranking
        its primary promotes the shared solve).  Lowering is refused —
        work already promised at a priority is never demoted."""
        ticket = self._by_id.get(job_id)
        entry = self._entries.get(job_id)
        if ticket is None or entry is None or ticket.cancelled:
            return False
        if priority <= ticket.priority:
            return False
        entry[3] = False
        ticket.priority = priority
        fresh = [-priority, next(self._seq), ticket, True]
        heapq.heappush(self._heap, fresh)
        self._entries[job_id] = fresh
        return True

    def find(self, job_id: str) -> Optional[QueuedTicket]:
        return self._by_id.get(job_id)

    def cancel(self, job_id: str) -> bool:
        """Mark a queued ticket cancelled; ``False`` if it already left."""
        ticket = self._by_id.get(job_id)
        if ticket is None or ticket.cancelled:
            return False
        ticket.cancelled = True
        return True

    def due(self, now: Optional[float] = None) -> List[QueuedTicket]:
        """Queued tickets whose primary deadline has passed.

        A pure query: whether an overdue ticket dies or keeps solving for
        its deduped followers is the *service's* decision, so nothing is
        marked here.
        """
        now = time.monotonic() if now is None else now
        return [
            t
            for t in self._by_id.values()
            if not t.cancelled and t.expired(now)
        ]
