"""Micro-batch coalescing of queued mapping requests.

The service amortizes its fixed per-batch costs (thread hop, engine
dispatch, pool scheduling) by grouping requests that arrive close
together into one engine batch:

* the batcher **blocks** until at least one ticket is available — an idle
  server burns no CPU;
* once the first ticket arrives it keeps collecting for at most
  ``max_wait_ms`` more milliseconds, up to ``max_batch`` tickets — the
  tail of a burst rides in the same batch as its head instead of paying
  one dispatch each;
* whatever arrived when the window closes ships immediately — a lone
  request is never held back longer than the window.

``max_wait_ms=0`` degenerates to "take whatever is already queued",
which keeps latency minimal under light load while still coalescing
back-to-back submissions.
"""

from __future__ import annotations

import asyncio
import time
from typing import List

from .queue import JobQueue, QueuedTicket

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Collects queued tickets into bounded, time-windowed batches."""

    def __init__(self, queue: JobQueue, max_batch: int, max_wait_ms: float) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        self.queue = queue
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms

    async def collect(self) -> List[QueuedTicket]:
        """Return the next micro-batch (waits for the first ticket).

        The returned batch preserves queue (priority) order and may
        contain cancelled/expired tickets; admission filtering is the
        caller's job.
        """
        first = await self.queue.get()
        batch = [first]
        deadline = time.monotonic() + self.max_wait_ms / 1000.0
        while len(batch) < self.max_batch:
            ticket = self.queue.get_nowait()
            if ticket is not None:
                batch.append(ticket)
                continue
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                ticket = await asyncio.wait_for(self.queue.get(), timeout=remaining)
            except asyncio.TimeoutError:
                break
            batch.append(ticket)
        return batch
