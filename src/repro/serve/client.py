"""Blocking client of the mapping serve tier (what ``repro submit`` uses).

Pure stdlib (:mod:`http.client`): one connection per request, JSON in
and out, mirroring the server's one-shot connection model.  All traffic
speaks the v1 wire schema (:mod:`repro.io.serve`); transport problems
and non-2xx answers re-raise as :class:`ServeClientError` carrying the
server's structured error — message, machine-readable ``code``, the
full error ``payload`` and, for 429 backpressure answers, the suggested
``retry_after_ms`` — so callers can react without parsing prose.

The same client talks to a single ``repro serve`` process or to the
sharded router front end; the wire API is identical by construction.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, List, Optional, Union
from urllib.parse import urlsplit

from ..io.serve import HealthReport, JobStatus, JobSubmission

__all__ = ["ServeClientError", "ServeClient"]


class ServeClientError(Exception):
    """The server was unreachable or answered with an error."""

    def __init__(
        self,
        message: str,
        status: Optional[int] = None,
        code: str = "",
        payload: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        #: Machine-readable reason (``"UNSUPPORTED_VERSION"``,
        #: ``"RETRY_AFTER"``, ``"SHED"``, ...); empty for transport errors.
        self.code = code
        #: The server's full structured error document, when one was sent.
        self.payload = payload or {}

    @property
    def retry_after_ms(self) -> Optional[float]:
        """Server-suggested backoff of a 429 answer; ``None`` otherwise."""
        value = self.payload.get("retry_after_ms")
        return None if value is None else float(value)

    @property
    def overloaded(self) -> bool:
        """True when the request was refused by admission control."""
        return self.status in (429, 503)


class ServeClient:
    """Talks to one serve front end (single service or router)."""

    def __init__(self, url: str, timeout: float = 30.0) -> None:
        split = urlsplit(url if "//" in url else f"http://{url}")
        if split.scheme not in ("", "http"):
            raise ServeClientError(f"unsupported URL scheme {split.scheme!r}")
        if not split.hostname:
            raise ServeClientError(f"bad server URL {url!r}")
        self.host = split.hostname
        self.port = split.port or 8347
        self.timeout = timeout

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------- api
    def submit(
        self, submission: Union[JobSubmission, List[JobSubmission]]
    ) -> Union[JobStatus, List[JobStatus]]:
        """Submit one submission (or a batch); returns the job status(es)."""
        if isinstance(submission, list):
            body = [entry.to_wire() for entry in submission]
            document = self._request("POST", "/v1/jobs", body)
            return [JobStatus.from_wire(entry) for entry in document]
        document = self._request("POST", "/v1/jobs", submission.to_wire())
        return JobStatus.from_wire(document)

    def status(self, job_id: str) -> JobStatus:
        return JobStatus.from_wire(self._request("GET", f"/v1/jobs/{job_id}"))

    def result(self, job_id: str) -> Dict[str, Any]:
        """The finished job's full result document."""
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> JobStatus:
        return JobStatus.from_wire(
            self._request("DELETE", f"/v1/jobs/{job_id}")
        )

    def health(self) -> HealthReport:
        return HealthReport.from_wire(self._request("GET", "/healthz"))

    def shutdown(self) -> Dict[str, Any]:
        return self._request("POST", "/v1/shutdown", {})

    def wait(
        self,
        job_id: str,
        timeout: Optional[float] = None,
        poll_interval: float = 0.05,
    ) -> JobStatus:
        """Poll until the job reaches a terminal state (or ``timeout`` s)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status.terminal:
                return status
            if deadline is not None and time.monotonic() >= deadline:
                raise ServeClientError(
                    f"timed out after {timeout:.1f}s waiting for job "
                    f"{job_id!r} (last state: {status.state})"
                )
            time.sleep(poll_interval)

    # ------------------------------------------------------------- internals
    def _request(self, method: str, path: str, body: Any = None) -> Any:
        payload = None
        headers = {"Accept": "application/json"}
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        except (ConnectionError, OSError) as exc:
            raise ServeClientError(
                f"cannot reach mapping service at {self.url}: {exc}"
            ) from exc
        finally:
            connection.close()
        try:
            document = json.loads(raw.decode("utf-8")) if raw else None
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeClientError(
                f"malformed response from {self.url}: {exc}"
            ) from exc
        if response.status >= 400:
            if isinstance(document, dict):
                raise ServeClientError(
                    document.get("error", f"HTTP {response.status}"),
                    status=response.status,
                    code=str(document.get("code", "")),
                    payload=document,
                )
            raise ServeClientError(
                f"HTTP {response.status}", status=response.status
            )
        return document
