"""Two-tier result store of the mapping service.

Finished results are kept under their canonical cache key (the engine's
:func:`~repro.engine.jobs.payload_cache_key`) in two tiers:

* an **in-memory LRU** of serialised :class:`~repro.engine.jobs.JobResult`
  documents, answering repeat submissions without touching the engine at
  all, and
* the engine's **on-disk** :class:`~repro.engine.cache.ResultCache`,
  which the engine consults and fills itself during ``run()`` — a
  restart-surviving tier shared with the ``repro batch`` CLI (the same
  key space, so a job solved by a batch run is a disk hit for the
  service and vice versa).

The store only ever holds *terminal, deterministic* outcomes (``ok`` and
``failed``); timeouts and crashes are never memoized.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional

from ..engine.cache import ResultCache
from ..engine.jobs import STATUS_FAILED, STATUS_OK

__all__ = ["ResultStore"]


class ResultStore:
    """In-memory LRU of result documents over an optional disk tier."""

    def __init__(
        self,
        memory_entries: int = 256,
        disk: Optional[ResultCache] = None,
    ) -> None:
        if memory_entries < 1:
            raise ValueError("memory_entries must be >= 1")
        self.memory_entries = memory_entries
        self.disk = disk
        self._memory: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._memory)

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the memoized result document for ``key``, or ``None``.

        Only the in-memory tier is consulted: the disk tier belongs to
        the engine, which checks it per job inside ``run()`` (a disk hit
        comes back as a normal ``cache_hit`` result and is then promoted
        into memory by :meth:`put`).
        """
        document = self._memory.get(key)
        if document is None:
            self.misses += 1
            return None
        self._memory.move_to_end(key)
        self.hits += 1
        return document

    def put(self, key: str, document: Dict[str, Any]) -> bool:
        """Memoize a finished job's serialised result document.

        Returns ``True`` when stored; non-deterministic outcomes
        (timeout, crash) are refused so a transiently broken job is
        re-attempted on resubmission.
        """
        if document.get("status") not in (STATUS_OK, STATUS_FAILED):
            return False
        self._memory[key] = document
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)
        return True

    def stats(self) -> Dict[str, Any]:
        return {
            "memory_entries": len(self._memory),
            "memory_capacity": self.memory_entries,
            "memory_hits": self.hits,
            "memory_misses": self.misses,
            "disk": self.disk.stats() if self.disk is not None else None,
        }
