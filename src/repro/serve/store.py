"""Result and warm-state stores of the mapping serve tier.

Finished results are kept under their canonical cache key (the engine's
:func:`~repro.engine.jobs.payload_cache_key`) in two tiers:

* an **in-memory LRU** of serialised :class:`~repro.engine.jobs.JobResult`
  documents, answering repeat submissions without touching the engine at
  all, and
* the engine's **on-disk** :class:`~repro.engine.cache.ResultCache` — a
  restart-surviving tier whose key space is *shared*: with the ``repro
  batch`` CLI, and across every replica of a sharded deployment pointed
  at the same cache directory.  A job solved by any of them is a disk
  hit for all of them, which is what makes cross-shard dedupe work when
  the router re-hashes traffic onto a different replica.

The store only ever holds *terminal, deterministic* outcomes (``ok`` and
``failed``); timeouts and crashes are never memoized.

:class:`WarmStateStore` is the second shared-directory channel: replicas
publish the exported :meth:`~repro.ilp.SolveContext.chain_dict` of
finished exact solves under a *warm key* (the job identity minus
mode/gap/timeout), and any replica admitting related work seeds its solve
from a sibling's state — cross-replica warm reuse without any
replica-to-replica connection.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from ..engine.cache import ResultCache
from ..engine.jobs import STATUS_FAILED, STATUS_OK
from .signature import signature_similarity

__all__ = ["ResultStore", "WarmStateStore"]

#: Tier names returned by :meth:`ResultStore.lookup`.
TIER_MEMORY = "memory"
TIER_DISK = "disk"


class ResultStore:
    """In-memory LRU of result documents over an optional disk tier."""

    def __init__(
        self,
        memory_entries: int = 256,
        disk: Optional[ResultCache] = None,
    ) -> None:
        if memory_entries < 1:
            raise ValueError("memory_entries must be >= 1")
        self.memory_entries = memory_entries
        self.disk = disk
        self._memory: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0

    def __len__(self) -> int:
        return len(self._memory)

    def lookup(self, key: str) -> Tuple[Optional[Dict[str, Any]], str]:
        """Return ``(document, tier)`` for ``key``; ``(None, "")`` on a miss.

        Memory first; on a memory miss the disk tier is consulted too —
        that is the admission-time path that turns work finished by a
        *different* process (a batch CLI run, another replica on the same
        cache directory) into an immediate answer instead of a queued
        solve.  Disk hits are promoted into memory.
        """
        document = self._memory.get(key)
        if document is not None:
            self._memory.move_to_end(key)
            self.hits += 1
            return document, TIER_MEMORY
        if self.disk is not None:
            document = self.disk.get(key)
            if document is not None and document.get("status") in (
                STATUS_OK,
                STATUS_FAILED,
            ):
                self.disk_hits += 1
                self._remember(key, document)
                return document, TIER_DISK
        self.misses += 1
        return None, ""

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The memoized result document for ``key`` (any tier), or ``None``."""
        return self.lookup(key)[0]

    def put(self, key: str, document: Dict[str, Any]) -> bool:
        """Memoize a finished job's serialised result document.

        Returns ``True`` when stored; non-deterministic outcomes
        (timeout, crash) are refused so a transiently broken job is
        re-attempted on resubmission.

        Deterministic outcomes are also **written through** to the disk
        tier under ``key`` when the engine did not already store them
        there itself (it writes under the key of the payload it actually
        executed — for a warm-seeded solve that differs from the
        submission's admission key, and without the write-through a
        sibling replica could never dedupe against it).
        """
        if document.get("status") not in (STATUS_OK, STATUS_FAILED):
            return False
        self._remember(key, document)
        if self.disk is not None and document.get("cache_key") != key:
            try:
                self.disk.put(key, document)
            except OSError:
                pass  # a full/readonly disk must not fail the job
        return True

    def _remember(self, key: str, document: Dict[str, Any]) -> None:
        self._memory[key] = document
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    def stats(self) -> Dict[str, Any]:
        return {
            "memory_entries": len(self._memory),
            "memory_capacity": self.memory_entries,
            "memory_hits": self.hits,
            "memory_misses": self.misses,
            "store_disk_hits": self.disk_hits,
            "disk": self.disk.stats() if self.disk is not None else None,
        }


class WarmStateStore:
    """Shared directory of exported solve state, keyed by job identity.

    Lives in a ``_warm/`` subdirectory of the engine cache directory (the
    result cache only globs ``*.json`` at its top level, so the two never
    interfere).  Entries are small JSON documents::

        {"warm_key": ..., "source": "<instance>",
         "signature": {...}, "chain_context": {...}}

    ``source`` is the writing instance's name, which is how a reader
    distinguishes *reusing its own* state from importing a sibling
    replica's — the ``warm_imports`` counter that proves cross-replica
    reuse in the scale benchmark.  ``signature`` is the exporter's
    :func:`~repro.serve.signature.structural_signature`, which is what
    :meth:`find_similar` ranks candidates by when an exact lookup
    misses — the similarity-keyed warm path for near-duplicate traffic.

    Writes are atomic (temp file + :func:`os.replace`) and first-writer
    wins: an entry is never overwritten, because any exporter of the same
    warm key solved the same identity and their states are equivalent.
    ``max_entries`` bounds the shared directory: past it, the oldest
    entries (by mtime) are evicted — warm state is a rolling window of
    *recent* solves, not an archive.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        instance: str = "",
        max_entries: Optional[int] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None)")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.instance = instance
        self.max_entries = max_entries
        self.exports = 0
        self.reuses = 0
        self.imports = 0
        self.evictions = 0
        #: warm_key -> signature (``None`` for entries exported without
        #: one).  Entries are immutable once written, so a parsed
        #: signature never goes stale; the index is refreshed lazily from
        #: the directory listing so entries exported by *sibling*
        #: replicas become candidates too.
        self._signatures: Dict[str, Optional[Dict[str, Any]]] = {}

    def path_for(self, warm_key: str) -> Path:
        return self.directory / f"{warm_key}.json"

    def _load(self, warm_key: str) -> Optional[Dict[str, Any]]:
        """Parse one entry; ``None`` on miss/corruption.  No counters."""
        try:
            document = json.loads(
                self.path_for(warm_key).read_text(encoding="utf-8")
            )
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(document, dict) or not isinstance(
            document.get("chain_context"), dict
        ):
            return None
        return document

    def get(self, warm_key: str) -> Optional[Dict[str, Any]]:
        """The warm document for ``warm_key``; ``None`` on miss/corruption.

        A readable hit bumps :attr:`reuses`, and additionally
        :attr:`imports` when the entry was written by a different
        instance.
        """
        document = self._load(warm_key)
        if document is None:
            return None
        self.reuses += 1
        if document.get("source") != self.instance:
            self.imports += 1
        return document

    def _refresh_index(self) -> None:
        """Sync the signature index with the (shared) directory listing."""
        try:
            names = {path.stem for path in self.directory.glob("*.json")}
        except OSError:
            return
        for stale in set(self._signatures) - names:
            del self._signatures[stale]
        for warm_key in names - set(self._signatures):
            document = self._load(warm_key)
            signature = document.get("signature") if document else None
            self._signatures[warm_key] = (
                signature if isinstance(signature, dict) else None
            )

    def find_similar(
        self,
        signature: Optional[Mapping[str, Any]],
        min_similarity: float = 0.5,
        exclude: Iterable[str] = (),
    ) -> Optional[Dict[str, Any]]:
        """The stored entry structurally nearest to ``signature``.

        Ranks every signed entry (own exports and siblings' alike) by
        :func:`~repro.serve.signature.signature_similarity` and returns
        the best document at or above ``min_similarity`` — ties break on
        the lexicographically smallest warm key, so concurrent replicas
        pick the same neighbor.  Returns ``None`` when nothing qualifies.
        The caller still owns the compatibility/transplant decision (and
        its ``similar_imports`` / ``similar_rejects`` accounting); this
        method bumps no counters.
        """
        if not isinstance(signature, Mapping) or not signature.get("bucket"):
            return None
        self._refresh_index()
        excluded = set(exclude)
        ranked: List[Tuple[float, str]] = []
        for warm_key, candidate in self._signatures.items():
            if warm_key in excluded or not candidate:
                continue
            score = signature_similarity(signature, candidate)
            if score >= min_similarity:
                ranked.append((-score, warm_key))
        for _, warm_key in sorted(ranked):
            document = self._load(warm_key)
            if document is not None:
                return document
            # Evicted/corrupted between indexing and now: drop and move on.
            self._signatures.pop(warm_key, None)
        return None

    def put(
        self,
        warm_key: str,
        chain_context: Dict[str, Any],
        signature: Optional[Mapping[str, Any]] = None,
    ) -> Optional[Path]:
        """Publish ``chain_context`` under ``warm_key`` (first writer wins)."""
        path = self.path_for(warm_key)
        if path.exists():
            return None
        document = {
            "warm_key": warm_key,
            "source": self.instance,
            "chain_context": dict(chain_context),
        }
        if isinstance(signature, Mapping):
            document["signature"] = dict(signature)
        try:
            fd, tmp_name = tempfile.mkstemp(
                dir=str(self.directory), prefix=".warm-", suffix=".tmp"
            )
        except FileNotFoundError:
            # The shared directory was cleared by another process between
            # our mkdir and now; recreate and retry once.
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=str(self.directory), prefix=".warm-", suffix=".tmp"
            )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(document, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.exports += 1
        self._signatures[warm_key] = (
            dict(signature) if isinstance(signature, Mapping) else None
        )
        if self.max_entries is not None:
            self._evict()
        return path

    def _evict(self) -> None:
        """Trim the directory down to ``max_entries``, oldest mtime first.

        Tolerant of concurrent writers/evictors on the shared directory:
        a file another replica removed first is simply skipped.
        """
        try:
            entries = []
            for path in self.directory.glob("*.json"):
                try:
                    entries.append((path.stat().st_mtime, path.name, path))
                except OSError:
                    continue
        except OSError:
            return
        excess = len(entries) - self.max_entries
        if excess <= 0:
            return
        for _, _, path in sorted(entries)[:excess]:
            try:
                path.unlink()
            except OSError:
                continue
            self.evictions += 1
            self._signatures.pop(path.stem, None)

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    def stats(self) -> Dict[str, int]:
        return {
            "exports": self.exports,
            "reuses": self.reuses,
            "imports": self.imports,
            "evictions": self.evictions,
        }
