"""The asyncio HTTP front end of the mapping service.

Routes (all JSON, one request per connection, every document versioned
``"v": 1``):

========================  =====================================================
``GET  /healthz``          ``health_report`` document (liveness + statistics)
``POST /v1/jobs``          submit one ``job_submission`` document — or a JSON
                           array of them — returns ``job_status`` document(s)
``GET  /v1/jobs/<id>``     current ``job_status`` of one job
``GET  /v1/jobs/<id>/result``  the finished job's full result document
``DELETE /v1/jobs/<id>``   cancel a queued job (409 once running/finished)
``POST /v1/shutdown``      acknowledge, then stop the server gracefully
========================  =====================================================

Errors are structured JSON (:func:`repro.serve.protocol.error_response`):
400 for malformed input — including a missing or future wire version,
which additionally carries ``supported_versions`` — 404 for unknown
ids/paths, 405 for bad methods, 409 for state conflicts and 500 for bugs.

:class:`BaseHttpServer` holds the transport plumbing (bind, accept,
request framing, error normalisation); :class:`MappingServer` adds the
job-API routes over one :class:`MappingService`.  The sharded router
(:mod:`repro.serve.router`) subclasses the same base so both tiers speak
byte-identical HTTP.
"""

from __future__ import annotations

import asyncio
from typing import Any, Optional, Tuple

from ..io.serialize import SerializationError
from ..io.serve import WIRE_VERSION, JobSubmission, WireVersionError
from .protocol import (
    HttpRequest,
    ProtocolError,
    error_response,
    format_response,
    json_response,
    parse_json_body,
    read_request,
)
from .service import MappingService, ServeError

__all__ = ["BaseHttpServer", "MappingServer"]


class BaseHttpServer:
    """Shared asyncio TCP/HTTP shell of the serve tier's front ends.

    Subclasses implement :meth:`_route` (and optionally the service
    lifecycle hooks); the base class owns connection handling, request
    framing with a stall timeout, and the mapping of exception classes to
    structured HTTP errors — the part that must behave identically on a
    replica and on the router.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8347,
        request_timeout: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        #: Seconds a connection may take to deliver its full request.  A
        #: peer that connects and stalls (crashed client, slowloris, TCP
        #: probe held open) is dropped instead of pinning a handler task
        #: and a file descriptor forever.
        self.request_timeout = request_timeout
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()

    # ------------------------------------------------------- lifecycle hooks
    async def _start_service(self) -> None:
        """Bring up whatever the routes dispatch onto (before binding)."""

    async def _stop_service(self) -> None:
        """Tear down what :meth:`_start_service` brought up."""

    # ------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        """Start the backing service and begin accepting connections."""
        await self._start_service()
        try:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.host, port=self.port
            )
        except OSError:
            # Bind failed: don't leak what we just started.
            await self._stop_service()
            raise
        # Port 0 binds an ephemeral port; reflect the real one.
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Serve until :meth:`request_shutdown` (or task cancellation)."""
        if self._server is None:
            await self.start()
        try:
            await self._shutdown.wait()
        finally:
            await self.stop()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self._stop_service()

    def request_shutdown(self) -> None:
        self._shutdown.set()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -------------------------------------------------------------- handling
    async def _handle_connection(self, reader, writer) -> None:
        response: Optional[Tuple[int, bytes]] = None
        try:
            request = await asyncio.wait_for(
                read_request(reader), timeout=self.request_timeout
            )
            if request is not None:
                response = await self._route(request)
            # request is None: the peer connected and left without a
            # request (port scan, TCP health probe) — answer nothing.
        except asyncio.TimeoutError:
            pass  # stalled peer: close without a response
        except ProtocolError as exc:
            response = error_response(exc.status, str(exc), code="BAD_REQUEST")
        except WireVersionError as exc:
            # The one 400 a well-behaved future client must be able to
            # machine-read: carries what this server *does* speak.
            response = error_response(
                400,
                str(exc),
                code="UNSUPPORTED_VERSION",
                supported_versions=list(exc.supported_versions),
            )
        except (ServeError, SerializationError) as exc:
            response = error_response(400, str(exc), code="BAD_REQUEST")
        except Exception as exc:  # never kill the acceptor on a bug
            response = error_response(
                500, f"{type(exc).__name__}: {exc}", code="INTERNAL"
            )
        finally:
            try:
                if response is not None:
                    writer.write(format_response(*response))
                    await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(self, request: HttpRequest) -> Tuple[int, bytes]:
        raise NotImplementedError


class MappingServer(BaseHttpServer):
    """Binds a :class:`MappingService` to a TCP port."""

    def __init__(
        self,
        service: MappingService,
        host: str = "127.0.0.1",
        port: int = 8347,
        request_timeout: float = 30.0,
    ) -> None:
        super().__init__(host=host, port=port, request_timeout=request_timeout)
        self.service = service

    async def _start_service(self) -> None:
        await self.service.start()

    async def _stop_service(self) -> None:
        await self.service.stop()

    # ---------------------------------------------------------------- routes
    async def _route(self, request: HttpRequest) -> Tuple[int, bytes]:
        path, method = request.path.rstrip("/") or "/", request.method

        if path == "/healthz":
            if method != "GET":
                return error_response(405, "healthz supports GET only")
            return json_response(200, self.service.health_report().to_wire())

        if path == "/v1/jobs":
            if method != "POST":
                return error_response(405, "submit jobs with POST /v1/jobs")
            return self._submit(parse_json_body(request))

        if path == "/v1/shutdown":
            if method != "POST":
                return error_response(405, "shutdown with POST /v1/shutdown")
            # Acknowledge first; serve_forever tears down right after.
            asyncio.get_running_loop().call_soon(self.request_shutdown)
            return json_response(
                202, {"kind": "shutdown", "v": WIRE_VERSION,
                      "status": "shutting down"}
            )

        if path.startswith("/v1/jobs/"):
            remainder = path[len("/v1/jobs/"):]
            if remainder.endswith("/result"):
                job_id = remainder[: -len("/result")]
                if method != "GET":
                    return error_response(405, "fetch results with GET")
                return self._result(job_id)
            job_id = remainder
            if method == "GET":
                return self._status(job_id)
            if method == "DELETE":
                return self._cancel(job_id)
            return error_response(405, "job endpoints support GET and DELETE")

        return error_response(404, f"unknown path {path!r}")

    # --------------------------------------------------------------- actions
    def _submit(self, body: Any) -> Tuple[int, bytes]:
        if isinstance(body, list):
            # Deserialise and validate the whole list before admitting
            # anything: a bad entry mid-batch must 400 without leaving
            # earlier entries enqueued as orphans the client has no id for.
            submissions = [JobSubmission.from_wire(entry) for entry in body]
            statuses = self.service.submit_many(submissions)
            return json_response(202, [status.to_wire() for status in statuses])
        status = self.service.submit(JobSubmission.from_wire(body))
        return json_response(202, status.to_wire())

    def _status(self, job_id: str) -> Tuple[int, bytes]:
        status = self.service.status(job_id)
        if status is None:
            return error_response(404, f"unknown job {job_id!r}")
        return json_response(200, status.to_wire())

    def _result(self, job_id: str) -> Tuple[int, bytes]:
        status = self.service.status(job_id)
        if status is None:
            return error_response(404, f"unknown job {job_id!r}")
        if status.state != "done":
            return error_response(
                409,
                f"job {job_id!r} is {status.state}, not done",
                code="NOT_DONE",
                job=status.to_wire(),
            )
        document = self.service.result(job_id)
        if document is None:
            return error_response(
                404, f"result of job {job_id!r} is no longer retained"
            )
        # The result is the engine's own job_result document, stamped with
        # the wire version here: all traffic carries "v", but the engine
        # schema stays the single source of truth for its fields.
        return json_response(200, {"v": WIRE_VERSION, **document})

    def _cancel(self, job_id: str) -> Tuple[int, bytes]:
        status = self.service.cancel(job_id)
        if status is None:
            return error_response(404, f"unknown job {job_id!r}")
        if status.state != "cancelled":
            return error_response(
                409,
                f"job {job_id!r} is {status.state} and can no longer be "
                "cancelled",
                code="NOT_CANCELLABLE",
                job=status.to_wire(),
            )
        return json_response(200, status.to_wire())
