"""The asyncio HTTP front end of the mapping service.

Routes (all JSON, one request per connection):

========================  =====================================================
``GET  /healthz``          service liveness + queue/worker/cache statistics
``POST /v1/jobs``          submit one ``job_submission`` document — or a JSON
                           array of them — returns ``job_status`` document(s)
``GET  /v1/jobs/<id>``     current ``job_status`` of one job
``GET  /v1/jobs/<id>/result``  the finished job's full result document
``DELETE /v1/jobs/<id>``   cancel a queued job (409 once running/finished)
``POST /v1/shutdown``      acknowledge, then stop the server gracefully
========================  =====================================================

Errors are JSON too: ``{"error": ..., "status": <code>}`` with 400 for
malformed input, 404 for unknown ids/paths, 405 for bad methods, 409
for state conflicts and 500 for bugs.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Optional, Tuple

from ..io.serve import job_status_to_dict, job_submission_from_dict
from ..io.serialize import SerializationError
from .protocol import (
    HttpRequest,
    ProtocolError,
    format_response,
    json_response,
    parse_json_body,
    read_request,
)
from .service import MappingService, ServeError

__all__ = ["MappingServer"]


class MappingServer:
    """Binds a :class:`MappingService` to a TCP port."""

    def __init__(
        self,
        service: MappingService,
        host: str = "127.0.0.1",
        port: int = 8347,
        request_timeout: float = 30.0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        #: Seconds a connection may take to deliver its full request.  A
        #: peer that connects and stalls (crashed client, slowloris, TCP
        #: probe held open) is dropped instead of pinning a handler task
        #: and a file descriptor forever.
        self.request_timeout = request_timeout
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()

    # ------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        """Start the service and begin accepting connections."""
        await self.service.start()
        try:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.host, port=self.port
            )
        except OSError:
            # Bind failed: don't leak the dispatcher/engine we just started.
            await self.service.stop()
            raise
        # Port 0 binds an ephemeral port; reflect the real one.
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Serve until :meth:`request_shutdown` (or task cancellation)."""
        if self._server is None:
            await self.start()
        try:
            await self._shutdown.wait()
        finally:
            await self.stop()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop()

    def request_shutdown(self) -> None:
        self._shutdown.set()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -------------------------------------------------------------- handling
    async def _handle_connection(self, reader, writer) -> None:
        response: Optional[Tuple[int, bytes]] = None
        try:
            request = await asyncio.wait_for(
                read_request(reader), timeout=self.request_timeout
            )
            if request is not None:
                response = await self._route(request)
            # request is None: the peer connected and left without a
            # request (port scan, TCP health probe) — answer nothing.
        except asyncio.TimeoutError:
            pass  # stalled peer: close without a response
        except ProtocolError as exc:
            response = _error(exc.status, str(exc))
        except (ServeError, SerializationError) as exc:
            response = _error(400, str(exc))
        except Exception as exc:  # never kill the acceptor on a bug
            response = _error(500, f"{type(exc).__name__}: {exc}")
        finally:
            try:
                if response is not None:
                    writer.write(format_response(*response))
                    await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(self, request: HttpRequest) -> Tuple[int, bytes]:
        path, method = request.path.rstrip("/") or "/", request.method

        if path == "/healthz":
            if method != "GET":
                return _error(405, "healthz supports GET only")
            return json_response(200, self.service.health())

        if path == "/v1/jobs":
            if method != "POST":
                return _error(405, "submit jobs with POST /v1/jobs")
            return self._submit(parse_json_body(request))

        if path == "/v1/shutdown":
            if method != "POST":
                return _error(405, "shutdown with POST /v1/shutdown")
            # Acknowledge first; serve_forever tears down right after.
            asyncio.get_running_loop().call_soon(self.request_shutdown)
            return json_response(202, {"status": "shutting down"})

        if path.startswith("/v1/jobs/"):
            remainder = path[len("/v1/jobs/"):]
            if remainder.endswith("/result"):
                job_id = remainder[: -len("/result")]
                if method != "GET":
                    return _error(405, "fetch results with GET")
                return self._result(job_id)
            job_id = remainder
            if method == "GET":
                return self._status(job_id)
            if method == "DELETE":
                return self._cancel(job_id)
            return _error(405, "job endpoints support GET and DELETE")

        return _error(404, f"unknown path {path!r}")

    # --------------------------------------------------------------- actions
    def _submit(self, body: Any) -> Tuple[int, bytes]:
        if isinstance(body, list):
            # Deserialise and validate the whole list before admitting
            # anything: a bad entry mid-batch must 400 without leaving
            # earlier entries enqueued as orphans the client has no id for.
            submissions = [job_submission_from_dict(entry) for entry in body]
            statuses = self.service.submit_many(submissions)
            return json_response(
                202, [job_status_to_dict(status) for status in statuses]
            )
        status = self.service.submit(job_submission_from_dict(body))
        return json_response(202, job_status_to_dict(status))

    def _status(self, job_id: str) -> Tuple[int, bytes]:
        status = self.service.status(job_id)
        if status is None:
            return _error(404, f"unknown job {job_id!r}")
        return json_response(200, job_status_to_dict(status))

    def _result(self, job_id: str) -> Tuple[int, bytes]:
        status = self.service.status(job_id)
        if status is None:
            return _error(404, f"unknown job {job_id!r}")
        if status.state != "done":
            return json_response(
                409,
                {
                    "error": f"job {job_id!r} is {status.state}, not done",
                    "status": 409,
                    "job": job_status_to_dict(status),
                },
            )
        document = self.service.result(job_id)
        if document is None:
            return _error(404, f"result of job {job_id!r} is no longer retained")
        return json_response(200, document)

    def _cancel(self, job_id: str) -> Tuple[int, bytes]:
        status = self.service.cancel(job_id)
        if status is None:
            return _error(404, f"unknown job {job_id!r}")
        if status.state != "cancelled":
            return json_response(
                409,
                {
                    "error": f"job {job_id!r} is {status.state} and can no "
                             "longer be cancelled",
                    "status": 409,
                    "job": job_status_to_dict(status),
                },
            )
        return json_response(200, job_status_to_dict(status))


def _error(status: int, message: str) -> Tuple[int, bytes]:
    body = (json.dumps({"error": message, "status": status}) + "\n").encode("utf-8")
    return status, body
