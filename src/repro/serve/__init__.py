"""Mapping-as-a-service: an asyncio job API over the batch engine.

``repro serve`` turns the one-shot mapping pipeline into a long-lived
service: submissions arrive as JSON over HTTP, coalesce into
micro-batches, run on a persistent :class:`~repro.engine.MappingEngine`
worker pool, and come back with the same fingerprints the CLI computes —
while duplicate requests (in flight or repeated) are answered from one
solve via canonical-hash dedupe and a two-tier result store.
"""

from .batcher import MicroBatcher
from .client import ServeClient, ServeClientError
from .protocol import HttpRequest, ProtocolError
from .queue import JobQueue, QueuedTicket
from .server import MappingServer
from .service import MappingService, ServeError
from .store import ResultStore

__all__ = [
    "JobQueue",
    "QueuedTicket",
    "MicroBatcher",
    "ResultStore",
    "MappingService",
    "ServeError",
    "MappingServer",
    "ServeClient",
    "ServeClientError",
    "HttpRequest",
    "ProtocolError",
]
