"""Mapping-as-a-service: an asyncio job API over the batch engine.

``repro serve`` turns the one-shot mapping pipeline into a long-lived
service: submissions arrive as v1 wire documents over HTTP
(:mod:`repro.io.serve`), coalesce into micro-batches, run on a
persistent :class:`~repro.engine.MappingEngine` worker pool, and come
back with the same fingerprints the CLI computes — while duplicate
requests (in flight or repeated) are answered from one solve via
canonical-hash dedupe and a two-tier result store.

``repro serve --replicas N`` scales the same service out: a
:class:`~repro.serve.service.ReplicaSupervisor` boots N replica
processes over one shared on-disk cache, and a
:class:`~repro.serve.router.RouterService` front end consistent-hashes
submissions across them with admission control, backpressure, load
shedding and automatic re-hash when a replica dies.
"""

from .batcher import MicroBatcher
from .client import ServeClient, ServeClientError
from .protocol import HttpRequest, ProtocolError
from .queue import JobQueue, QueuedTicket
from .router import HashRing, RouterServer, RouterService, routing_key
from .server import MappingServer
from .service import MappingService, ReplicaSupervisor, ServeError
from .signature import (
    signature_similarity,
    signatures_compatible,
    signatures_equal_shape,
    structural_signature,
)
from .store import ResultStore, WarmStateStore

__all__ = [
    "JobQueue",
    "QueuedTicket",
    "MicroBatcher",
    "ResultStore",
    "WarmStateStore",
    "structural_signature",
    "signature_similarity",
    "signatures_compatible",
    "signatures_equal_shape",
    "MappingService",
    "ReplicaSupervisor",
    "ServeError",
    "MappingServer",
    "ServeClient",
    "ServeClientError",
    "HashRing",
    "RouterService",
    "RouterServer",
    "routing_key",
    "HttpRequest",
    "ProtocolError",
]
