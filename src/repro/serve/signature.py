"""Structural signatures of mapping submissions for similarity keying.

The exact-identity warm-state store (:mod:`repro.serve.store`) only fires
when the *same* design/board arrives twice.  Near-duplicate submissions —
same board, one conflict pair or one access-count knob different — are
the common case under real traffic, and they cold-start today even
though the neighbor's exported basis/incumbent would warm-start them.

:func:`structural_signature` fingerprints a submission's executable
payload into a small, JSON-serialisable document that supports *nearest
compatible neighbor* lookups:

``bucket``
    Canonical hash of everything that must match **exactly** for any
    state transfer to be sound: the board document and every solver knob
    in the warm identity (solver, options, weights, capacity mode, port
    estimation, warm-start flags).  Entries in different buckets are
    never candidates — a different board or backend is a different
    world, not a near-duplicate.

``sos``
    The SOS-group layout: one entry per data structure, ``name ->
    [depth, width]``.  Each structure is one SOS-1 row of the global
    model, so this is the row layout of the assignment block.  Shared
    structure names whose shapes differ make two signatures
    *incompatible* (a transplanted incumbent would refer to a different
    geometry under the same name).

``dims``
    ``[num_structures, num_conflicts, num_bank_types]`` — the coarse
    shape of the CSR standard form (one SOS row per structure, one
    exclusion row per conflict pair, one capacity row per bank type).
    Equal dims + equal SOS layout mean the neighbor's root basis has the
    right dimensions for a dual-simplex warm re-solve.

``sketch``
    A fixed-width minhash sketch over the constraint-row token set — a
    locality-sensitive summary of the standard form.  The fraction of
    matching slots estimates the Jaccard similarity of the two row sets,
    so dropping one conflict pair barely moves the sketch while a
    different design on the same board lands far away.

Everything here is derived from the *wire documents* (board/design
dicts), not from a built model: signatures are computed on the admission
path of every submission and must stay cheap.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Mapping, Optional

from ..engine.cache import canonical_hash

__all__ = [
    "SIGNATURE_VERSION",
    "SKETCH_SLOTS",
    "structural_signature",
    "signature_similarity",
    "signatures_compatible",
    "signatures_equal_shape",
]

#: Bump when the signature document shape changes incompatibly.  New
#: fields must be additive (see CONTRIBUTING, "Adding a similarity
#: signature field"): comparisons only read fields both sides carry.
SIGNATURE_VERSION = 1

#: Minhash width.  24 slots put the standard error of the Jaccard
#: estimate around 0.1 — enough to separate "one row edited" (~0.9+)
#: from "different design on the same board" (~0.2) decisively.
SKETCH_SLOTS = 24

#: Default acceptance threshold for :func:`signature_similarity` —
#: callers may tighten it, but below this a candidate is noise.
MIN_SIMILARITY = 0.5

#: Payload fields hashed into the hard-compatibility bucket.  The design
#: is deliberately absent (that is what the sketch measures); everything
#: else of the warm identity must match exactly.
_BUCKET_KEYS = (
    "board",
    "weights",
    "solver",
    "solver_options",
    "capacity_mode",
    "port_estimation",
    "warm_start",
    "warm_retries",
)


def _hash64(token: str) -> int:
    return int.from_bytes(
        hashlib.sha256(token.encode("utf-8")).digest()[:8], "big"
    )


#: Per-slot salts: one deterministic 64-bit pattern per minhash slot,
#: xor-ed into every token hash so each slot ranks the token set under
#: an independent permutation.
_SLOT_SALTS = tuple(
    _hash64(f"warm-signature-slot-{slot}") for slot in range(SKETCH_SLOTS)
)


def _row_tokens(board: Mapping[str, Any], design: Mapping[str, Any]) -> List[str]:
    """One token per constraint row of the submission's standard form."""
    tokens: List[str] = []
    for entry in design.get("data_structures") or []:
        tokens.append(
            "sos:{name}:{depth}x{width}:r{reads}:w{writes}".format(
                name=entry.get("name"),
                depth=entry.get("depth"),
                width=entry.get("width"),
                reads=entry.get("reads"),
                writes=entry.get("writes"),
            )
        )
    for pair in design.get("conflicts") or []:
        tokens.append("conflict:" + "|".join(sorted(str(p) for p in pair)))
    for bank in board.get("bank_types") or []:
        tokens.append(
            "cap:{name}:{instances}:{ports}".format(
                name=bank.get("name"),
                instances=bank.get("num_instances"),
                ports=bank.get("num_ports"),
            )
        )
    return tokens


def _sketch(tokens: List[str]) -> List[int]:
    hashes = [_hash64(token) for token in tokens] or [0]
    return [min(h ^ salt for h in hashes) for salt in _SLOT_SALTS]


def structural_signature(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """The structural signature of an executable job payload.

    Cheap (a few dozen short hashes), deterministic, and built purely
    from the payload's wire documents — safe to compute on every
    admission.
    """
    board = payload.get("board") or {}
    design = payload.get("design") or {}
    bucket_identity: Dict[str, Any] = {
        key: payload.get(key) for key in _BUCKET_KEYS
    }
    bucket_identity["kind"] = "warm_signature_bucket"
    structures = design.get("data_structures") or []
    return {
        "kind": "warm_signature",
        "version": SIGNATURE_VERSION,
        "bucket": canonical_hash(bucket_identity),
        "sos": {
            str(entry.get("name")): [
                int(entry.get("depth") or 0),
                int(entry.get("width") or 0),
            ]
            for entry in structures
        },
        "dims": [
            len(structures),
            len(design.get("conflicts") or []),
            len(board.get("bank_types") or []),
        ],
        "sketch": _sketch(_row_tokens(board, design)),
    }


def signature_similarity(
    a: Optional[Mapping[str, Any]], b: Optional[Mapping[str, Any]]
) -> float:
    """Estimated Jaccard similarity of two signatures' row sets in [0, 1].

    Signatures from different buckets (different board/solver identity)
    are 0.0 by definition — no amount of sketch agreement makes them
    transfer candidates.
    """
    if not isinstance(a, Mapping) or not isinstance(b, Mapping):
        return 0.0
    if not a.get("bucket") or a.get("bucket") != b.get("bucket"):
        return 0.0
    sketch_a, sketch_b = a.get("sketch") or [], b.get("sketch") or []
    if not sketch_a or len(sketch_a) != len(sketch_b):
        return 0.0
    equal = sum(1 for x, y in zip(sketch_a, sketch_b) if x == y)
    return equal / len(sketch_a)


def signatures_compatible(
    a: Optional[Mapping[str, Any]], b: Optional[Mapping[str, Any]]
) -> bool:
    """Whether state exported under ``b`` may seed a solve of ``a``.

    Requires the same hard-compatibility bucket and agreement on the
    shape of every *shared* structure name: a sketch collision between
    two designs whose like-named structures have different SOS
    geometries must be rejected, never transplanted.
    """
    if not isinstance(a, Mapping) or not isinstance(b, Mapping):
        return False
    if not a.get("bucket") or a.get("bucket") != b.get("bucket"):
        return False
    sos_a = a.get("sos") or {}
    sos_b = b.get("sos") or {}
    for name, shape in sos_a.items():
        other = sos_b.get(name)
        if other is not None and list(other) != list(shape):
            return False
    return True


def signatures_equal_shape(
    a: Optional[Mapping[str, Any]], b: Optional[Mapping[str, Any]]
) -> bool:
    """Whether two signatures describe models of identical shape.

    Equal dims and an identical SOS layout mean the neighbor's exported
    root basis has matching dimensions, so it is worth shipping for a
    dual-simplex warm re-solve.  Anything less and the basis is dropped
    up front — the revised-simplex kernel would reject it anyway, this
    just keeps the guard explicit and the transplant lean.
    """
    if not signatures_compatible(a, b):
        return False
    return list(a.get("dims") or []) == list(b.get("dims") or []) and dict(
        a.get("sos") or {}
    ) == dict(b.get("sos") or {})
