"""Logical data structures (the design-side input of the mapping problem).

Section 3.2 of the paper: the mapper receives, for every data segment of
the application, its number of words (*depth*, :math:`D_d`) and bits per
word (*width*, :math:`W_d`).  A footprint analysis of memory accesses can
additionally guide the mapping; the paper's objective approximates the
access count of a structure by its depth ("assuming the number of reads is
equal to the number of writes for every data structure"), so read/write
counts are optional here and default to the depth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["DataStructure", "DesignError"]


class DesignError(ValueError):
    """Raised when a design description is internally inconsistent."""


@dataclass(frozen=True)
class DataStructure:
    """A logical memory segment to be mapped onto physical banks.

    Parameters
    ----------
    name:
        Unique identifier within the design (e.g. ``"frame_buffer"``).
    depth:
        Number of words, :math:`D_d`.
    width:
        Bits per word, :math:`W_d`.
    reads, writes:
        Optional access counts from a footprint analysis.  When omitted the
        paper's assumption (one read and one write per word, i.e. ``depth``
        of each) is used by the cost model.
    lifetime:
        Optional ``(start, end)`` control steps from scheduling; used by the
        conflict analysis (structures with overlapping lifetimes may not
        share storage).
    """

    name: str
    depth: int
    width: int
    reads: Optional[int] = None
    writes: Optional[int] = None
    lifetime: Optional[tuple] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise DesignError("data structure requires a non-empty name")
        if self.depth <= 0:
            raise DesignError(f"{self.name}: depth must be positive, got {self.depth}")
        if self.width <= 0:
            raise DesignError(f"{self.name}: width must be positive, got {self.width}")
        if self.reads is not None and self.reads < 0:
            raise DesignError(f"{self.name}: reads must be non-negative")
        if self.writes is not None and self.writes < 0:
            raise DesignError(f"{self.name}: writes must be non-negative")
        if self.lifetime is not None:
            start, end = self.lifetime
            if end < start:
                raise DesignError(
                    f"{self.name}: lifetime end {end} precedes start {start}"
                )

    # ------------------------------------------------------------ geometry
    @property
    def size_bits(self) -> int:
        """Total storage requirement in bits (:math:`D_d \\cdot W_d`)."""
        return self.depth * self.width

    @property
    def effective_reads(self) -> int:
        """Read count used by the cost model (paper default: the depth)."""
        return self.reads if self.reads is not None else self.depth

    @property
    def effective_writes(self) -> int:
        """Write count used by the cost model (paper default: the depth)."""
        return self.writes if self.writes is not None else self.depth

    @property
    def total_accesses(self) -> int:
        return self.effective_reads + self.effective_writes

    def overlaps_lifetime(self, other: "DataStructure") -> bool:
        """Whether the two structures' lifetimes overlap.

        Structures without lifetime information are conservatively treated
        as always live, hence overlapping everything.
        """
        if self.lifetime is None or other.lifetime is None:
            return True
        a_start, a_end = self.lifetime
        b_start, b_end = other.lifetime
        return not (a_end < b_start or b_end < a_start)

    def describe(self) -> str:
        """One-line human readable summary."""
        extra = ""
        if self.reads is not None or self.writes is not None:
            extra = f", R={self.effective_reads} W={self.effective_writes}"
        if self.lifetime is not None:
            extra += f", live {self.lifetime[0]}..{self.lifetime[1]}"
        return f"{self.name}: {self.depth}x{self.width} ({self.size_bits} bits{extra})"

    def with_lifetime(self, start: int, end: int) -> "DataStructure":
        """Return a copy of the structure annotated with a lifetime."""
        return DataStructure(
            name=self.name,
            depth=self.depth,
            width=self.width,
            reads=self.reads,
            writes=self.writes,
            lifetime=(start, end),
        )
