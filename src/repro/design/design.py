"""The :class:`Design` container: data structures plus conflict information.

A design is what the memory mapper receives from high-level synthesis: a
set of already-formed data segments (Section 3.2, "it is assumed that the
structures are already formed") together with the conflict pairs produced
by lifetime analysis (Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Tuple

from .conflicts import ConflictSet
from .datastruct import DataStructure, DesignError

__all__ = ["Design"]


@dataclass(frozen=True)
class Design:
    """An application's memory view: segments and their conflicts."""

    name: str
    data_structures: Tuple[DataStructure, ...]
    conflicts: ConflictSet = field(default_factory=ConflictSet.empty)

    def __post_init__(self) -> None:
        structures = tuple(self.data_structures)
        if not structures:
            raise DesignError(f"design {self.name!r} has no data structures")
        object.__setattr__(self, "data_structures", structures)
        names = [ds.name for ds in structures]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise DesignError(f"design {self.name!r} has duplicate segments: {duplicates}")
        known = set(names)
        for a, b in self.conflicts.pairs:
            if a not in known or b not in known:
                raise DesignError(
                    f"conflict pair ({a!r}, {b!r}) references unknown data structures"
                )

    # ------------------------------------------------------------ builders
    @classmethod
    def from_segments(
        cls,
        name: str,
        segments: Iterable[Tuple[str, int, int]],
        conflicts: Optional[Iterable[Tuple[str, str]]] = None,
    ) -> "Design":
        """Build a design from ``(name, depth, width)`` triples."""
        structures = tuple(DataStructure(n, d, w) for n, d, w in segments)
        conflict_set = (
            ConflictSet.from_pairs(conflicts) if conflicts else ConflictSet.empty()
        )
        return cls(name=name, data_structures=structures, conflicts=conflict_set)

    def with_conflicts(self, conflicts: ConflictSet) -> "Design":
        """Return a copy of the design with a replaced conflict set."""
        return Design(name=self.name, data_structures=self.data_structures,
                      conflicts=conflicts)

    def with_all_conflicts(self) -> "Design":
        """Return a copy where no storage sharing is allowed at all."""
        return self.with_conflicts(ConflictSet.all_pairs(self.data_structures))

    # ------------------------------------------------------------- queries
    def __iter__(self):
        return iter(self.data_structures)

    def __len__(self) -> int:
        return len(self.data_structures)

    @property
    def num_segments(self) -> int:
        """Number of data structures (Table 3's design complexity parameter)."""
        return len(self.data_structures)

    @property
    def segment_names(self) -> Tuple[str, ...]:
        return tuple(ds.name for ds in self.data_structures)

    @property
    def total_bits(self) -> int:
        """Sum of all segment sizes in bits."""
        return sum(ds.size_bits for ds in self.data_structures)

    @property
    def total_words(self) -> int:
        return sum(ds.depth for ds in self.data_structures)

    @property
    def max_width(self) -> int:
        return max(ds.width for ds in self.data_structures)

    def by_name(self, name: str) -> DataStructure:
        for ds in self.data_structures:
            if ds.name == name:
                return ds
        raise DesignError(f"design {self.name!r} has no data structure named {name!r}")

    def index_of(self, name: str) -> int:
        for index, ds in enumerate(self.data_structures):
            if ds.name == name:
                return index
        raise DesignError(f"design {self.name!r} has no data structure named {name!r}")

    def subset(self, names: Sequence[str], name: Optional[str] = None) -> "Design":
        """Return the sub-design containing only ``names`` (order preserved)."""
        keep = set(names)
        structures = tuple(ds for ds in self.data_structures if ds.name in keep)
        return Design(
            name=name or f"{self.name}-subset",
            data_structures=structures,
            conflicts=self.conflicts.restricted_to(keep),
        )

    def complexity(self) -> Dict[str, int]:
        """Design-side complexity (Table 3 "#segments" column)."""
        return {"segments": self.num_segments, "bits": self.total_bits,
                "conflicts": len(self.conflicts)}

    def describe(self) -> str:
        """Multi-line human readable summary used by the examples."""
        lines = [
            f"Design {self.name!r}: {self.num_segments} data structures, "
            f"{self.total_bits} bits, {len(self.conflicts)} conflict pairs"
        ]
        for ds in self.data_structures:
            lines.append("  " + ds.describe())
        return "\n".join(lines)
