"""Realistic signal/image-processing workloads for examples and tests.

The paper motivates memory mapping with "signal and image processing
applications" whose performance is dominated by memory behaviour (Section
1).  The designs below are hand-built models of the kernels such
applications are made of — 2-D convolution over line buffers, FIR filtering,
an in-place FFT, blocked matrix multiplication and block-matching motion
estimation — each expressed as the set of data structures the synthesised
datapath would need, plus (where it is natural) a task graph from which
lifetimes and conflict pairs are derived.

These designs are used by the example scripts, the integration tests and
the quality-ablation benchmark; the Table 3 benchmark uses the synthetic
generator instead because the paper characterises its designs only by
complexity counts.
"""

from __future__ import annotations

from typing import List

from .conflicts import ConflictSet
from .datastruct import DataStructure
from .design import Design
from .taskgraph import Task, TaskGraph

__all__ = [
    "image_pipeline_design",
    "fir_filter_design",
    "fft_design",
    "matrix_multiply_design",
    "motion_estimation_design",
    "all_example_designs",
]


def image_pipeline_design(
    image_width: int = 512,
    pixel_bits: int = 8,
    kernel_size: int = 3,
    with_schedule: bool = True,
) -> Design:
    """A 2-D convolution + histogram + gamma-correction pipeline.

    Data structures: one line buffer per kernel row, the coefficient
    kernel, an output tile, a 256-bin histogram, a gamma look-up table and
    a small control/status block.  When ``with_schedule`` is true the
    stages are placed in a task graph and scheduled so that lifetime-based
    conflicts are derived (e.g. the histogram and the gamma LUT never
    conflict because histogram equalisation finishes before gamma mapping
    starts reading the LUT-corrected stream).
    """
    structures: List[DataStructure] = []
    for row in range(kernel_size):
        structures.append(DataStructure(f"line_buf{row}", image_width, pixel_bits))
    structures.append(DataStructure("kernel", kernel_size * kernel_size, 8))
    structures.append(DataStructure("conv_out", image_width, pixel_bits + 4))
    structures.append(DataStructure("histogram", 256, 16))
    structures.append(DataStructure("cdf_table", 256, 16))
    structures.append(DataStructure("gamma_lut", 256, pixel_bits))
    structures.append(DataStructure("out_tile", image_width, pixel_bits))
    structures.append(DataStructure("ctrl_regs", 16, 32))

    if not with_schedule:
        return Design(
            name="image-pipeline",
            data_structures=tuple(structures),
            conflicts=ConflictSet.all_pairs(structures),
        )

    graph = TaskGraph("image-pipeline")
    line_bufs = tuple(f"line_buf{row}" for row in range(kernel_size))
    graph.add_task(Task("fetch_lines", writes=line_bufs, latency=4))
    graph.add_task(
        Task("convolve", reads=line_bufs + ("kernel", "ctrl_regs"),
             writes=("conv_out",), latency=6),
        depends_on=["fetch_lines"],
    )
    graph.add_task(
        Task("histogram_build", reads=("conv_out",), writes=("histogram",), latency=3),
        depends_on=["convolve"],
    )
    graph.add_task(
        Task("cdf_scan", reads=("histogram",), writes=("cdf_table",), latency=2),
        depends_on=["histogram_build"],
    )
    graph.add_task(
        Task("gamma_map", reads=("conv_out", "cdf_table", "gamma_lut"),
             writes=("out_tile",), latency=4),
        depends_on=["cdf_scan"],
    )
    graph.add_task(
        Task("writeback", reads=("out_tile", "ctrl_regs"), latency=2),
        depends_on=["gamma_map"],
    )
    return graph.to_design("image-pipeline", structures)


def fir_filter_design(
    taps: int = 64,
    block_size: int = 1024,
    sample_bits: int = 16,
) -> Design:
    """A block-processing FIR filter: sample blocks, delay line, coefficients."""
    structures = [
        DataStructure("input_block", block_size, sample_bits),
        DataStructure("output_block", block_size, sample_bits),
        DataStructure("coefficients", taps, sample_bits),
        DataStructure("delay_line", taps, sample_bits),
        DataStructure("accumulators", 8, 2 * sample_bits + 8),
    ]
    graph = TaskGraph("fir")
    graph.add_task(Task("load_block", writes=("input_block",), latency=3))
    graph.add_task(
        Task("filter", reads=("input_block", "coefficients", "delay_line"),
             writes=("output_block", "delay_line", "accumulators"), latency=8),
        depends_on=["load_block"],
    )
    graph.add_task(
        Task("store_block", reads=("output_block",), latency=3),
        depends_on=["filter"],
    )
    return graph.to_design("fir-filter", structures)


def fft_design(points: int = 1024, sample_bits: int = 16) -> Design:
    """An iterative radix-2 FFT with ping-pong buffers and a twiddle ROM."""
    structures = [
        DataStructure("real_ping", points, sample_bits),
        DataStructure("imag_ping", points, sample_bits),
        DataStructure("real_pong", points, sample_bits),
        DataStructure("imag_pong", points, sample_bits),
        DataStructure("twiddle_rom", points // 2, 2 * sample_bits),
        DataStructure("bitrev_lut", points, 16),
        DataStructure("stage_ctrl", 16, 16),
    ]
    graph = TaskGraph("fft")
    graph.add_task(Task("load", writes=("real_ping", "imag_ping"), latency=4))
    graph.add_task(
        Task("bit_reverse", reads=("real_ping", "imag_ping", "bitrev_lut"),
             writes=("real_pong", "imag_pong"), latency=3),
        depends_on=["load"],
    )
    graph.add_task(
        Task("butterflies", reads=("real_pong", "imag_pong", "twiddle_rom", "stage_ctrl"),
             writes=("real_ping", "imag_ping"), latency=10),
        depends_on=["bit_reverse"],
    )
    graph.add_task(
        Task("store", reads=("real_ping", "imag_ping"), latency=4),
        depends_on=["butterflies"],
    )
    return graph.to_design("fft", structures)


def matrix_multiply_design(tile: int = 64, element_bits: int = 16) -> Design:
    """Blocked matrix multiply: A/B tiles, C accumulator tile, index tables."""
    structures = [
        DataStructure("tile_a", tile * tile, element_bits),
        DataStructure("tile_b", tile * tile, element_bits),
        DataStructure("tile_c", tile * tile, 2 * element_bits + 8),
        DataStructure("row_index", tile, 16),
        DataStructure("col_index", tile, 16),
    ]
    graph = TaskGraph("matmul")
    graph.add_task(Task("load_a", writes=("tile_a", "row_index"), latency=4))
    graph.add_task(Task("load_b", writes=("tile_b", "col_index"), latency=4))
    graph.add_task(
        Task("multiply", reads=("tile_a", "tile_b", "row_index", "col_index"),
             writes=("tile_c",), latency=12),
        depends_on=["load_a", "load_b"],
    )
    graph.add_task(Task("store_c", reads=("tile_c",), latency=4), depends_on=["multiply"])
    return graph.to_design("matrix-multiply", structures)


def motion_estimation_design(
    block: int = 16,
    search_range: int = 16,
    pixel_bits: int = 8,
) -> Design:
    """Full-search block matching: current block, search window, SAD arrays."""
    window = block + 2 * search_range
    structures = [
        DataStructure("current_block", block * block, pixel_bits),
        DataStructure("search_window", window * window, pixel_bits),
        DataStructure("sad_scores", (2 * search_range + 1) ** 2, 16),
        DataStructure("best_vectors", 64, 24),
        DataStructure("ref_cache", 4 * window, pixel_bits),
    ]
    graph = TaskGraph("motion-estimation")
    graph.add_task(Task("load_current", writes=("current_block",), latency=2))
    graph.add_task(Task("load_window", writes=("search_window", "ref_cache"), latency=6))
    graph.add_task(
        Task("sad_search", reads=("current_block", "search_window"),
             writes=("sad_scores",), latency=16),
        depends_on=["load_current", "load_window"],
    )
    graph.add_task(
        Task("pick_best", reads=("sad_scores",), writes=("best_vectors",), latency=2),
        depends_on=["sad_search"],
    )
    return graph.to_design("motion-estimation", structures)


def all_example_designs() -> List[Design]:
    """Every named workload, as used by integration tests and ablations."""
    return [
        image_pipeline_design(),
        fir_filter_design(),
        fft_design(),
        matrix_multiply_design(),
        motion_estimation_design(),
    ]
