"""Design substrate: data structures, conflicts, task graphs and generators.

This package implements the design-side inputs of the mapping problem
(Sections 3.2 and 3.3 of the paper): the logical data segments with their
depth/width, the conflict pairs from lifetime analysis, a small task-graph
scheduler that produces those lifetimes, and generators for both synthetic
benchmark designs and realistic example workloads.
"""

from .conflicts import ConflictSet
from .dagsched import DagScheduleGenerator, dag_schedule_design
from .datastruct import DataStructure, DesignError
from .design import Design
from .generator import DesignGenerator, random_design
from .taskgraph import Schedule, Task, TaskGraph
from .workloads import (
    all_example_designs,
    fft_design,
    fir_filter_design,
    image_pipeline_design,
    matrix_multiply_design,
    motion_estimation_design,
)

__all__ = [
    "DataStructure",
    "DesignError",
    "Design",
    "ConflictSet",
    "Task",
    "TaskGraph",
    "Schedule",
    "DesignGenerator",
    "random_design",
    "DagScheduleGenerator",
    "dag_schedule_design",
    "image_pipeline_design",
    "fir_filter_design",
    "fft_design",
    "matrix_multiply_design",
    "motion_estimation_design",
    "all_example_designs",
]
