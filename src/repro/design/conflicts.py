"""Conflict (lifetime-overlap) description between data structures.

Section 3.3 of the paper: scheduling determines the lifetimes of the
design's data structures; structures whose lifetimes do *not* overlap may
share the same physical storage, which reduces the total capacity the
mapper must reserve.  The mapper therefore receives a set of *conflict
pairs*: pair ``(L1, L2)`` means L1 and L2 cannot share storage space.

:class:`ConflictSet` stores these pairs symmetrically, can be derived from
lifetime annotations, and answers the queries the capacity constraints and
the detailed mapper need (does a group of structures pairwise conflict?
what is the worst-case simultaneous footprint of a set of structures?).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import FrozenSet, Iterable, List, Sequence, Set, Tuple

from .datastruct import DataStructure, DesignError

__all__ = ["ConflictSet"]

Pair = Tuple[str, str]


def _canonical(a: str, b: str) -> Pair:
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class ConflictSet:
    """An immutable, symmetric set of conflicting data-structure pairs."""

    pairs: FrozenSet[Pair]

    # ------------------------------------------------------------ builders
    @classmethod
    def empty(cls) -> "ConflictSet":
        return cls(frozenset())

    @classmethod
    def from_pairs(cls, pairs: Iterable[Sequence[str]]) -> "ConflictSet":
        canonical: Set[Pair] = set()
        for pair in pairs:
            a, b = pair
            if a == b:
                raise DesignError(f"a data structure cannot conflict with itself ({a!r})")
            canonical.add(_canonical(a, b))
        return cls(frozenset(canonical))

    @classmethod
    def all_pairs(cls, structures: Iterable[DataStructure]) -> "ConflictSet":
        """Every pair conflicts (no storage sharing possible at all)."""
        names = [ds.name for ds in structures]
        return cls(frozenset(_canonical(a, b) for a, b in combinations(names, 2)))

    @classmethod
    def from_lifetimes(cls, structures: Iterable[DataStructure]) -> "ConflictSet":
        """Derive conflicts from lifetime annotations.

        Structures without a lifetime are conservatively assumed to be live
        for the whole execution, hence they conflict with everything.
        """
        structures = list(structures)
        pairs: Set[Pair] = set()
        for a, b in combinations(structures, 2):
            if a.overlaps_lifetime(b):
                pairs.add(_canonical(a.name, b.name))
        return cls(frozenset(pairs))

    # ------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(sorted(self.pairs))

    def conflicts(self, a: str, b: str) -> bool:
        """Whether structures ``a`` and ``b`` may not share storage."""
        if a == b:
            return False
        return _canonical(a, b) in self.pairs

    def compatible(self, a: str, b: str) -> bool:
        """Whether ``a`` and ``b`` are allowed to overlap in memory."""
        return not self.conflicts(a, b)

    def neighbours(self, name: str) -> Set[str]:
        """All structures that conflict with ``name``."""
        result = set()
        for a, b in self.pairs:
            if a == name:
                result.add(b)
            elif b == name:
                result.add(a)
        return result

    def restricted_to(self, names: Iterable[str]) -> "ConflictSet":
        """Conflicts among a subset of structures (used per bank type)."""
        keep = set(names)
        return ConflictSet(
            frozenset(p for p in self.pairs if p[0] in keep and p[1] in keep)
        )

    def degree(self, name: str) -> int:
        return len(self.neighbours(name))

    # --------------------------------------------------- capacity analysis
    def conflict_cliques(self, structures: Sequence[DataStructure]) -> List[List[str]]:
        """Greedy clique cover of the conflict graph.

        Structures in the same clique all pairwise conflict, so each clique's
        storage demands add up; structures in different cliques of the cover
        *may* be able to overlap.  Used by the conflict-aware capacity
        constraint to compute a safe lower bound on the space a set of
        structures needs when sharing is allowed.
        """
        remaining = [ds.name for ds in sorted(structures, key=lambda d: -d.size_bits)]
        cliques: List[List[str]] = []
        for name in remaining:
            placed = False
            for clique in cliques:
                if all(self.conflicts(name, member) for member in clique):
                    clique.append(name)
                    placed = True
                    break
            if not placed:
                cliques.append([name])
        return cliques

    def worst_case_bits(self, structures: Sequence[DataStructure]) -> int:
        """Largest simultaneous storage demand of ``structures``.

        Without sharing this is simply the sum of sizes; with lifetime
        information it is the size of the heaviest conflict clique found by
        the greedy cover (a safe upper bound on the simultaneous demand and
        a lower bound on required capacity).
        """
        structures = list(structures)
        if not structures:
            return 0
        sizes = {ds.name: ds.size_bits for ds in structures}
        # If every pair conflicts the answer is the plain sum.
        if all(
            self.conflicts(a.name, b.name) for a, b in combinations(structures, 2)
        ):
            return sum(sizes.values())
        cliques = self.conflict_cliques(structures)
        return max(sum(sizes[name] for name in clique) for clique in cliques)

    def union(self, other: "ConflictSet") -> "ConflictSet":
        return ConflictSet(self.pairs | other.pairs)

    def describe(self) -> str:
        return f"{len(self.pairs)} conflict pairs"
