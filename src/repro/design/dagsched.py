"""Time-indexed DAG-scheduling workload generator.

The paper's workloads are straight-line pipelines whose conflict graphs
are near-complete.  Time-indexed DAG scheduling — the shape studied by
dRMT-style packet-program schedulers, where a DAG of operations is packed
into discrete time slots under per-slot resource capacities — produces a
structurally different mapping instance: a *layered* task DAG is list-
scheduled onto ``slots`` functional units per control step, lifetimes fall
out of the schedule, and the resulting conflict graph is *banded* (buffers
of distant layers never coexist, so they may share storage).  The ILP core
then sees sparse conflict structure, non-trivial clique covers and genuine
sharing opportunities instead of the paper's all-pairs conflicts.

Knobs follow the burst/branch variants of that literature:

* ``depth`` × ``width``: layers of the DAG and base tasks per layer;
* ``burstiness``: 0 keeps every layer at ``width`` tasks; towards 1,
  alternating layers swell and shrink (bursty superscalar phases), which
  stresses the per-slot capacity and widens the lifetime bands;
* ``branch_factor``: share of possible producer→consumer edges between
  adjacent layers that are realised (fan-in/fan-out richness);
* ``slots``: per-step resource capacity of the list scheduler — fewer
  slots stretch the schedule, lengthening lifetimes and re-densifying the
  conflict graph.

Everything is drawn from one seeded generator, so identical parameters
and seed always produce the identical design.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..arch.board import Board
from .datastruct import DataStructure, DesignError
from .design import Design
from .taskgraph import Task, TaskGraph

__all__ = ["DagScheduleGenerator", "dag_schedule_design"]

#: Word widths typical of intermediate buffers in streaming dataflow code.
_BUFFER_WIDTHS: Tuple[int, ...] = (8, 8, 12, 16, 16, 24, 32)


@dataclass
class DagScheduleGenerator:
    """Reproducible generator of layered DAG-scheduling designs."""

    seed: int = 0
    depth: int = 4
    width: int = 3
    burstiness: float = 0.0
    branch_factor: float = 0.5
    slots: int = 2
    min_words: int = 16
    max_words: int = 2048

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise DesignError("dag-schedule: depth must be at least 1")
        if self.width < 1:
            raise DesignError("dag-schedule: width must be at least 1")
        if not 0.0 <= self.burstiness <= 1.0:
            raise DesignError("dag-schedule: burstiness must lie in [0, 1]")
        if not 0.0 <= self.branch_factor <= 1.0:
            raise DesignError("dag-schedule: branch_factor must lie in [0, 1]")
        if self.slots < 1:
            raise DesignError("dag-schedule: slots must be at least 1")
        if self.min_words <= 0 or self.max_words < self.min_words:
            raise DesignError("dag-schedule: invalid words range")
        self._rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------ api
    def generate(
        self,
        name: Optional[str] = None,
        board: Optional[Board] = None,
        target_occupancy: float = 0.45,
    ) -> Design:
        """Build the layered DAG, schedule it, and derive the design.

        When ``board`` is given the buffer depths are rescaled so the
        design's footprint is roughly ``target_occupancy`` of the board
        capacity, exactly like the synthetic generator does.
        """
        rng = self._rng
        layer_widths = self._layer_widths()

        structures: List[DataStructure] = []
        log_lo = math.log2(self.min_words)
        log_hi = math.log2(self.max_words)

        def new_buffer(layer: int, slot: int) -> DataStructure:
            depth_words = int(2 ** rng.uniform(log_lo, log_hi))
            width_bits = int(rng.choice(_BUFFER_WIDTHS))
            buf = DataStructure(f"l{layer}b{slot}", depth_words, width_bits)
            structures.append(buf)
            return buf

        graph = TaskGraph(name or "dag-schedule")
        previous: List[Tuple[str, str]] = []  # (task name, buffer name)
        for layer, count in enumerate(layer_widths):
            current: List[Tuple[str, str]] = []
            for slot in range(count):
                buf = new_buffer(layer, slot)
                task_name = f"t{layer}_{slot}"
                if previous:
                    # Every task keeps at least one producer so the DAG is
                    # connected; branch_factor adds the rest of the edges.
                    picks = [int(rng.integers(0, len(previous)))]
                    for i in range(len(previous)):
                        if i not in picks and rng.random() < self.branch_factor:
                            picks.append(i)
                    picks.sort()
                    reads = tuple(previous[i][1] for i in picks)
                    deps = [previous[i][0] for i in picks]
                else:
                    reads = ()
                    deps = []
                latency = int(rng.integers(1, 4))
                graph.add_task(
                    Task(task_name, reads=reads, writes=(buf.name,),
                         latency=latency),
                    depends_on=deps,
                )
                current.append((task_name, buf.name))
            previous = current

        if board is not None:
            structures = self._fit_to_board(structures, board, target_occupancy)

        # Resource-constrained list scheduling: the per-slot capacity is
        # what makes the instance "time-indexed" — lifetimes (and hence
        # the conflict bands) come out of the slot-limited schedule.
        return graph.to_design(
            name or f"dag-{self.depth}x{self.width}-seed{self.seed}",
            structures,
            resource_limit=self.slots,
        )

    # ------------------------------------------------------------ internals
    def _layer_widths(self) -> List[int]:
        """Tasks per layer; burstiness swells odd layers and shrinks even ones."""
        widths: List[int] = []
        for layer in range(self.depth):
            if self.burstiness <= 0.0:
                widths.append(self.width)
                continue
            swing = self.burstiness * self.width
            if layer % 2:
                widths.append(max(1, int(round(self.width + swing))))
            else:
                widths.append(max(1, int(round(self.width - swing / 2))))
        return widths

    def _fit_to_board(
        self,
        structures: List[DataStructure],
        board: Board,
        target_occupancy: float,
    ) -> List[DataStructure]:
        if not 0.0 < target_occupancy <= 1.0:
            raise DesignError("target_occupancy must lie in (0, 1]")
        capacity = board.total_capacity_bits
        max_bank_width = max(
            max(config.width for config in bank.configurations) for bank in board
        )
        total = sum(ds.size_bits for ds in structures)
        scale = (target_occupancy * capacity) / max(1, total)
        fitted: List[DataStructure] = []
        for ds in structures:
            width = min(ds.width, max_bank_width * 4)
            depth = max(self.min_words, int(ds.depth * min(scale, 1.0)))
            fitted.append(DataStructure(ds.name, depth, width))
        return fitted


def dag_schedule_design(
    depth: int = 4,
    width: int = 3,
    burstiness: float = 0.0,
    branch_factor: float = 0.5,
    slots: int = 2,
    seed: int = 0,
    board: Optional[Board] = None,
    target_occupancy: float = 0.45,
    name: Optional[str] = None,
) -> Design:
    """Convenience wrapper around :class:`DagScheduleGenerator`."""
    generator = DagScheduleGenerator(
        seed=seed,
        depth=depth,
        width=width,
        burstiness=burstiness,
        branch_factor=branch_factor,
        slots=slots,
    )
    return generator.generate(
        name=name, board=board, target_occupancy=target_occupancy
    )
