"""Task-graph scheduling and lifetime analysis for conflict derivation.

The paper assumes an upstream synthesis flow: "During synthesis of a
design, scheduling determines the life times of the variables and data
structures" (Section 3.3).  The mapper itself only consumes the resulting
conflict pairs.  This module implements that small upstream substrate so
that realistic inputs can be produced end-to-end:

* a :class:`TaskGraph` of operations with data-structure *defs* and *uses*
  and precedence edges,
* ASAP / resource-constrained list scheduling assigning a control step to
  every task, and
* lifetime computation per data structure (first def to last use), from
  which a :class:`~repro.design.conflicts.ConflictSet` is derived.

The implementation uses :mod:`networkx` for the graph bookkeeping (already
a dependency of the scientific-Python stack available here).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import networkx as nx

from .conflicts import ConflictSet
from .datastruct import DataStructure, DesignError
from .design import Design

__all__ = ["Task", "TaskGraph", "Schedule"]


@dataclass(frozen=True)
class Task:
    """One schedulable operation of the application.

    ``reads``/``writes`` name the data structures the task accesses;
    ``latency`` is its duration in control steps (≥ 1).
    """

    name: str
    reads: Tuple[str, ...] = ()
    writes: Tuple[str, ...] = ()
    latency: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise DesignError("task requires a non-empty name")
        if self.latency <= 0:
            raise DesignError(f"task {self.name!r}: latency must be positive")
        object.__setattr__(self, "reads", tuple(self.reads))
        object.__setattr__(self, "writes", tuple(self.writes))

    @property
    def touched(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(self.reads + self.writes))


@dataclass
class Schedule:
    """Result of scheduling: start step per task and lifetime per structure."""

    start_times: Dict[str, int]
    finish_times: Dict[str, int]
    lifetimes: Dict[str, Tuple[int, int]]
    makespan: int

    def lifetime_of(self, name: str) -> Tuple[int, int]:
        try:
            return self.lifetimes[name]
        except KeyError:
            raise DesignError(f"no lifetime recorded for data structure {name!r}")


class TaskGraph:
    """A DAG of tasks with data-structure accesses."""

    def __init__(self, name: str = "taskgraph") -> None:
        self.name = name
        self._graph = nx.DiGraph()
        self._tasks: Dict[str, Task] = {}

    # ------------------------------------------------------------ building
    def add_task(self, task: Task, depends_on: Iterable[str] = ()) -> Task:
        """Add a task and its dependency edges (dependencies must exist)."""
        if task.name in self._tasks:
            raise DesignError(f"duplicate task name {task.name!r}")
        self._tasks[task.name] = task
        self._graph.add_node(task.name)
        for dep in depends_on:
            if dep not in self._tasks:
                raise DesignError(f"task {task.name!r} depends on unknown task {dep!r}")
            self._graph.add_edge(dep, task.name)
        if not nx.is_directed_acyclic_graph(self._graph):
            # Roll back so the graph stays usable after the error.
            self._graph.remove_node(task.name)
            del self._tasks[task.name]
            raise DesignError(f"adding task {task.name!r} would create a cycle")
        return task

    def add_chain(self, tasks: Sequence[Task]) -> List[Task]:
        """Add a linear chain of tasks, each depending on the previous one."""
        added = []
        previous: Optional[Task] = None
        for task in tasks:
            deps = [previous.name] if previous is not None else []
            added.append(self.add_task(task, depends_on=deps))
            previous = task
        return added

    # ------------------------------------------------------------- queries
    @property
    def tasks(self) -> Tuple[Task, ...]:
        return tuple(self._tasks[name] for name in self._tasks)

    @property
    def num_tasks(self) -> int:
        return len(self._tasks)

    def task(self, name: str) -> Task:
        try:
            return self._tasks[name]
        except KeyError:
            raise DesignError(f"no task named {name!r} in task graph {self.name!r}")

    def predecessors(self, name: str) -> List[str]:
        return list(self._graph.predecessors(name))

    def successors(self, name: str) -> List[str]:
        return list(self._graph.successors(name))

    def touched_structures(self) -> Set[str]:
        """Names of every data structure read or written by some task."""
        names: Set[str] = set()
        for task in self._tasks.values():
            names.update(task.touched)
        return names

    # ----------------------------------------------------------- scheduling
    def schedule_asap(self) -> Schedule:
        """As-soon-as-possible schedule (unlimited functional units)."""
        return self._schedule(resource_limit=None)

    def schedule_list(self, resource_limit: int) -> Schedule:
        """Resource-constrained list schedule with ``resource_limit`` units.

        Priority is the task's critical-path length (longest latency path to
        a sink), the standard list-scheduling heuristic.
        """
        if resource_limit <= 0:
            raise DesignError("resource_limit must be positive")
        return self._schedule(resource_limit=resource_limit)

    def _critical_path_priority(self) -> Dict[str, int]:
        priority: Dict[str, int] = {}
        for node in reversed(list(nx.topological_sort(self._graph))):
            task = self._tasks[node]
            succ = [priority[s] for s in self._graph.successors(node)]
            priority[node] = task.latency + (max(succ) if succ else 0)
        return priority

    def _schedule(self, resource_limit: Optional[int]) -> Schedule:
        if not self._tasks:
            raise DesignError(f"task graph {self.name!r} has no tasks to schedule")
        order = list(nx.topological_sort(self._graph))
        priority = self._critical_path_priority()

        start: Dict[str, int] = {}
        finish: Dict[str, int] = {}
        if resource_limit is None:
            for node in order:
                earliest = max(
                    (finish[p] for p in self._graph.predecessors(node)), default=0
                )
                start[node] = earliest
                finish[node] = earliest + self._tasks[node].latency
        else:
            # Cycle-by-cycle list scheduling.
            ready: List[str] = []
            unscheduled = set(order)
            running: List[Tuple[int, str]] = []  # (finish time, task)
            time = 0
            in_degree = {n: self._graph.in_degree(n) for n in order}
            ready = [n for n in order if in_degree[n] == 0]
            while unscheduled:
                # Retire finished tasks and release their successors.
                for finish_time, node in list(running):
                    if finish_time <= time:
                        running.remove((finish_time, node))
                        for succ in self._graph.successors(node):
                            in_degree[succ] -= 1
                            if in_degree[succ] == 0:
                                ready.append(succ)
                ready.sort(key=lambda n: -priority[n])
                free = resource_limit - len(running)
                issued = 0
                for node in list(ready):
                    if issued >= free:
                        break
                    ready.remove(node)
                    unscheduled.discard(node)
                    start[node] = time
                    finish[node] = time + self._tasks[node].latency
                    running.append((finish[node], node))
                    issued += 1
                time += 1
                if time > 10 * sum(t.latency for t in self._tasks.values()) + 10:
                    raise DesignError(
                        "list scheduling failed to converge (is the graph well-formed?)"
                    )

        makespan = max(finish.values())
        lifetimes = self._lifetimes(start, finish)
        return Schedule(start_times=start, finish_times=finish,
                        lifetimes=lifetimes, makespan=makespan)

    def _lifetimes(
        self, start: Mapping[str, int], finish: Mapping[str, int]
    ) -> Dict[str, Tuple[int, int]]:
        """Lifetime of a structure: first write (or first access) to last access."""
        lifetimes: Dict[str, Tuple[int, int]] = {}
        for task in self._tasks.values():
            s, f = start[task.name], finish[task.name]
            for name in task.touched:
                if name in lifetimes:
                    lo, hi = lifetimes[name]
                    lifetimes[name] = (min(lo, s), max(hi, f))
                else:
                    lifetimes[name] = (s, f)
        return lifetimes

    # ------------------------------------------------- design construction
    def to_design(
        self,
        name: str,
        structures: Iterable[DataStructure],
        resource_limit: Optional[int] = None,
    ) -> Design:
        """Build a :class:`Design` with lifetimes and conflicts from scheduling.

        ``structures`` must cover every data structure touched by the task
        graph; structures never touched keep no lifetime (and therefore
        conservatively conflict with everything).
        """
        structures = list(structures)
        by_name = {ds.name: ds for ds in structures}
        missing = self.touched_structures() - set(by_name)
        if missing:
            raise DesignError(
                f"task graph touches unknown data structures: {sorted(missing)}"
            )
        schedule = (
            self.schedule_asap()
            if resource_limit is None
            else self.schedule_list(resource_limit)
        )
        annotated = []
        access_counts: Dict[str, List[int]] = {ds.name: [0, 0] for ds in structures}
        for task in self._tasks.values():
            for read in task.reads:
                access_counts[read][0] += by_name[read].depth
            for write in task.writes:
                access_counts[write][1] += by_name[write].depth
        for ds in structures:
            reads, writes = access_counts[ds.name]
            base = DataStructure(
                name=ds.name,
                depth=ds.depth,
                width=ds.width,
                reads=reads or ds.reads,
                writes=writes or ds.writes,
            )
            if ds.name in schedule.lifetimes:
                lo, hi = schedule.lifetimes[ds.name]
                base = base.with_lifetime(lo, hi)
            annotated.append(base)
        conflicts = ConflictSet.from_lifetimes(annotated)
        return Design(name=name, data_structures=tuple(annotated), conflicts=conflicts)
