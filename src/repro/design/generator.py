"""Seeded synthetic design generation.

The evaluation in the paper (Table 3) characterises each benchmark design
only by its complexity parameters — the number of logical segments on the
design side and the number of banks / ports / configuration settings on the
physical side.  The actual designs are unnamed signal/image-processing
applications.  This module produces *reproducible* synthetic designs with a
requested number of segments whose size distribution resembles such
applications (many small coefficient tables and line buffers, a few large
frame-sized buffers), optionally scaled so they fit a given board with a
target occupancy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..arch.board import Board
from .conflicts import ConflictSet
from .datastruct import DataStructure, DesignError
from .design import Design

__all__ = ["DesignGenerator", "random_design"]

#: Word widths commonly produced by synthesis of DSP/image applications.
_TYPICAL_WIDTHS: Tuple[int, ...] = (1, 2, 4, 8, 8, 12, 16, 16, 24, 32)


@dataclass
class DesignGenerator:
    """Reproducible generator of synthetic designs.

    Parameters
    ----------
    seed:
        Seed of the underlying :class:`numpy.random.Generator`; identical
        parameters and seed always produce the identical design.
    min_depth, max_depth:
        Range of segment depths (words); depths are drawn log-uniformly so
        small tables dominate, as in real designs.
    widths:
        Candidate word widths.
    conflict_density:
        Fraction of segment pairs marked as conflicting (lifetime overlap).
        The default of 1.0 reproduces the paper's conservative setting in
        which no storage sharing is assumed unless stated otherwise.
    large_segment_fraction:
        Fraction of segments drawn from the "large buffer" regime (frame or
        block sized) rather than the "small table" regime.
    """

    seed: int = 0
    min_depth: int = 16
    max_depth: int = 4096
    widths: Sequence[int] = _TYPICAL_WIDTHS
    conflict_density: float = 1.0
    large_segment_fraction: float = 0.2

    def __post_init__(self) -> None:
        if self.min_depth <= 0 or self.max_depth < self.min_depth:
            raise DesignError("invalid depth range for DesignGenerator")
        if not 0.0 <= self.conflict_density <= 1.0:
            raise DesignError("conflict_density must lie in [0, 1]")
        if not 0.0 <= self.large_segment_fraction <= 1.0:
            raise DesignError("large_segment_fraction must lie in [0, 1]")
        self._rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------ api
    def generate(
        self,
        num_segments: int,
        name: Optional[str] = None,
        board: Optional[Board] = None,
        target_occupancy: float = 0.5,
    ) -> Design:
        """Generate a design with ``num_segments`` data structures.

        When ``board`` is given the segment sizes are rescaled so the total
        footprint is roughly ``target_occupancy`` of the board capacity (the
        mapping problem is then feasible but not trivially so).
        """
        if num_segments <= 0:
            raise DesignError("num_segments must be positive")
        rng = self._rng
        structures: List[DataStructure] = []
        log_lo, log_hi = math.log2(self.min_depth), math.log2(self.max_depth)
        for index in range(num_segments):
            if rng.random() < self.large_segment_fraction:
                depth = int(2 ** rng.uniform(log_hi - 1.5, log_hi))
            else:
                depth = int(2 ** rng.uniform(log_lo, log_hi - 2.0))
            depth = max(self.min_depth, depth)
            width = int(rng.choice(self.widths))
            structures.append(DataStructure(f"seg{index:03d}", depth, width))

        if board is not None:
            structures = self._fit_to_board(structures, board, target_occupancy)

        conflicts = self._random_conflicts(structures)
        return Design(
            name=name or f"synthetic-{num_segments}seg-seed{self.seed}",
            data_structures=tuple(structures),
            conflicts=conflicts,
        )

    # ------------------------------------------------------------ internals
    def _fit_to_board(
        self,
        structures: List[DataStructure],
        board: Board,
        target_occupancy: float,
    ) -> List[DataStructure]:
        """Scale depths so the design occupies ~``target_occupancy`` of the board.

        Only depths are scaled (widths are architectural properties of the
        data); scaling never pushes a depth below the generator minimum.
        The segment widths are additionally clamped to the widest word any
        bank type offers so that every segment is individually mappable.
        """
        if not 0.0 < target_occupancy <= 1.0:
            raise DesignError("target_occupancy must lie in (0, 1]")
        capacity = board.total_capacity_bits
        max_bank_width = max(
            max(config.width for config in bank.configurations) for bank in board
        )
        total = sum(ds.size_bits for ds in structures)
        scale = (target_occupancy * capacity) / max(1, total)
        scaled: List[DataStructure] = []
        for ds in structures:
            width = min(ds.width, max_bank_width * 4)
            depth = max(self.min_depth, int(ds.depth * min(scale, 1.0)))
            scaled.append(DataStructure(ds.name, depth, width))
        return scaled

    def _random_conflicts(self, structures: Sequence[DataStructure]) -> ConflictSet:
        if self.conflict_density >= 1.0:
            return ConflictSet.all_pairs(structures)
        if self.conflict_density <= 0.0:
            return ConflictSet.empty()
        rng = self._rng
        pairs = []
        names = [ds.name for ds in structures]
        for i in range(len(names)):
            for j in range(i + 1, len(names)):
                if rng.random() < self.conflict_density:
                    pairs.append((names[i], names[j]))
        return ConflictSet.from_pairs(pairs)


def random_design(
    num_segments: int,
    seed: int = 0,
    board: Optional[Board] = None,
    conflict_density: float = 1.0,
    name: Optional[str] = None,
    target_occupancy: float = 0.5,
) -> Design:
    """Convenience wrapper around :class:`DesignGenerator` for one design."""
    generator = DesignGenerator(seed=seed, conflict_density=conflict_density)
    return generator.generate(
        num_segments, name=name, board=board, target_occupancy=target_occupancy
    )
