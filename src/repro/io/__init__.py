"""Input/output: JSON serialisation of boards, designs and mapping results."""

from .serialize import (
    SCHEMA_VERSION,
    SerializationError,
    board_from_dict,
    board_to_dict,
    design_from_dict,
    design_to_dict,
    detailed_mapping_from_dict,
    detailed_mapping_to_dict,
    global_mapping_from_dict,
    global_mapping_to_dict,
    load_board,
    load_design,
    load_json,
    mapping_result_from_dict,
    mapping_result_to_dict,
    save_json,
)

__all__ = [
    "SCHEMA_VERSION",
    "SerializationError",
    "board_to_dict",
    "board_from_dict",
    "design_to_dict",
    "design_from_dict",
    "global_mapping_to_dict",
    "global_mapping_from_dict",
    "detailed_mapping_to_dict",
    "detailed_mapping_from_dict",
    "mapping_result_to_dict",
    "mapping_result_from_dict",
    "save_json",
    "load_json",
    "load_board",
    "load_design",
]
