"""JSON (de)serialisation of boards, designs and mapping results.

A memory mapper is only usable as a tool if its inputs and outputs can be
exchanged with the rest of a synthesis flow.  This module defines a small,
versioned JSON schema for the three artefact kinds the library consumes and
produces:

* **boards** — bank types with instances/ports/configurations/latencies/pins,
* **designs** — data structures with optional access counts, lifetimes and
  conflict pairs,
* **mapping results** — the global assignment, the cost breakdown and every
  placed fragment of the detailed mapping.

The functions come in pairs (``*_to_dict`` / ``*_from_dict``) plus
``save_json`` / ``load_json`` convenience wrappers.  Round-tripping a board
or design through the schema reproduces an equal object; the test suite
pins this down.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from ..arch.bank import BankType, MemoryConfig
from ..arch.board import Board
from ..core.mapping import DetailedMapping, Fragment, GlobalMapping, MappingResult, PlacedFragment
from ..core.objective import CostBreakdown
from ..design.conflicts import ConflictSet
from ..design.datastruct import DataStructure
from ..design.design import Design

__all__ = [
    "SCHEMA_VERSION",
    "SerializationError",
    "board_to_dict",
    "board_from_dict",
    "design_to_dict",
    "design_from_dict",
    "global_mapping_to_dict",
    "global_mapping_from_dict",
    "detailed_mapping_to_dict",
    "detailed_mapping_from_dict",
    "mapping_result_to_dict",
    "mapping_result_from_dict",
    "scenario_point_to_dict",
    "scenario_point_from_dict",
    "scenario_grid_to_dict",
    "scenario_grid_from_dict",
    "save_json",
    "load_json",
    "load_board",
    "load_design",
]

#: Version tag embedded in every serialised document.
SCHEMA_VERSION = 1


class SerializationError(ValueError):
    """Raised when a document cannot be interpreted."""


def _require(mapping: Mapping[str, Any], key: str, context: str) -> Any:
    try:
        return mapping[key]
    except KeyError:
        raise SerializationError(f"{context}: missing required field {key!r}")


def _check_kind(data: Mapping[str, Any], expected: str) -> None:
    kind = data.get("kind")
    if kind != expected:
        raise SerializationError(
            f"expected a {expected!r} document, got kind={kind!r}"
        )
    version = data.get("schema_version", SCHEMA_VERSION)
    if int(version) > SCHEMA_VERSION:
        raise SerializationError(
            f"document uses schema version {version}, this library supports "
            f"up to {SCHEMA_VERSION}"
        )


# ---------------------------------------------------------------------------
# Boards
# ---------------------------------------------------------------------------

def board_to_dict(board: Board) -> Dict[str, Any]:
    """Serialise a :class:`Board` into a JSON-compatible dictionary."""
    return {
        "kind": "board",
        "schema_version": SCHEMA_VERSION,
        "name": board.name,
        "clock_ns": board.clock_ns,
        "bank_types": [
            {
                "name": bank.name,
                "family": bank.family,
                "num_instances": bank.num_instances,
                "num_ports": bank.num_ports,
                "configurations": [
                    {"depth": c.depth, "width": c.width} for c in bank.configurations
                ],
                "read_latency": bank.read_latency,
                "write_latency": bank.write_latency,
                "pins_traversed": bank.pins_traversed,
            }
            for bank in board.bank_types
        ],
    }


def board_from_dict(data: Mapping[str, Any]) -> Board:
    """Rebuild a :class:`Board` from :func:`board_to_dict` output."""
    _check_kind(data, "board")
    bank_types = []
    for entry in _require(data, "bank_types", "board"):
        configs = tuple(
            MemoryConfig(int(c["depth"]), int(c["width"]))
            for c in _require(entry, "configurations", "bank type")
        )
        bank_types.append(
            BankType(
                name=_require(entry, "name", "bank type"),
                family=entry.get("family", ""),
                num_instances=int(_require(entry, "num_instances", "bank type")),
                num_ports=int(_require(entry, "num_ports", "bank type")),
                configurations=configs,
                read_latency=int(entry.get("read_latency", 1)),
                write_latency=int(entry.get("write_latency", 1)),
                pins_traversed=int(entry.get("pins_traversed", 0)),
            )
        )
    return Board(
        name=_require(data, "name", "board"),
        bank_types=tuple(bank_types),
        clock_ns=float(data.get("clock_ns", 20.0)),
    )


# ---------------------------------------------------------------------------
# Designs
# ---------------------------------------------------------------------------

def design_to_dict(design: Design) -> Dict[str, Any]:
    """Serialise a :class:`Design` into a JSON-compatible dictionary."""
    return {
        "kind": "design",
        "schema_version": SCHEMA_VERSION,
        "name": design.name,
        "data_structures": [
            {
                "name": ds.name,
                "depth": ds.depth,
                "width": ds.width,
                "reads": ds.reads,
                "writes": ds.writes,
                "lifetime": list(ds.lifetime) if ds.lifetime is not None else None,
            }
            for ds in design.data_structures
        ],
        "conflicts": [list(pair) for pair in design.conflicts],
    }


def design_from_dict(data: Mapping[str, Any]) -> Design:
    """Rebuild a :class:`Design` from :func:`design_to_dict` output."""
    _check_kind(data, "design")
    structures = []
    for entry in _require(data, "data_structures", "design"):
        lifetime = entry.get("lifetime")
        structures.append(
            DataStructure(
                name=_require(entry, "name", "data structure"),
                depth=int(_require(entry, "depth", "data structure")),
                width=int(_require(entry, "width", "data structure")),
                reads=entry.get("reads"),
                writes=entry.get("writes"),
                lifetime=tuple(lifetime) if lifetime is not None else None,
            )
        )
    conflicts = ConflictSet.from_pairs(data.get("conflicts", []))
    return Design(
        name=_require(data, "name", "design"),
        data_structures=tuple(structures),
        conflicts=conflicts,
    )


# ---------------------------------------------------------------------------
# Mapping results
# ---------------------------------------------------------------------------

def _cost_from_dict(data: Optional[Mapping[str, Any]]) -> Optional[CostBreakdown]:
    if data is None:
        return None
    return CostBreakdown(
        latency=float(_require(data, "latency", "cost breakdown")),
        pin_delay=float(_require(data, "pin_delay", "cost breakdown")),
        pin_io=float(_require(data, "pin_io", "cost breakdown")),
        weighted_total=float(_require(data, "weighted_total", "cost breakdown")),
    )


def global_mapping_to_dict(mapping: GlobalMapping) -> Dict[str, Any]:
    return {
        "kind": "global_mapping",
        "schema_version": SCHEMA_VERSION,
        "design": mapping.design_name,
        "board": mapping.board_name,
        "assignment": dict(mapping.assignment),
        "objective": mapping.objective,
        "solver_status": mapping.solver_status,
        "solve_time": mapping.solve_time,
        "cost": mapping.cost.as_dict() if mapping.cost is not None else None,
    }


def global_mapping_from_dict(data: Mapping[str, Any]) -> GlobalMapping:
    """Rebuild a :class:`GlobalMapping` from :func:`global_mapping_to_dict`."""
    _check_kind(data, "global_mapping")
    return GlobalMapping(
        design_name=_require(data, "design", "global mapping"),
        board_name=_require(data, "board", "global mapping"),
        assignment=dict(_require(data, "assignment", "global mapping")),
        objective=float(_require(data, "objective", "global mapping")),
        cost=_cost_from_dict(data.get("cost")),
        solver_status=data.get("solver_status", "optimal"),
        solve_time=float(data.get("solve_time", 0.0)),
    )


def detailed_mapping_to_dict(detailed: DetailedMapping) -> Dict[str, Any]:
    return {
        "kind": "detailed_mapping",
        "schema_version": SCHEMA_VERSION,
        "design": detailed.design_name,
        "board": detailed.board_name,
        "placements": [
            {
                "structure": placement.structure,
                "region": placement.fragment.region,
                "grid": [placement.fragment.row, placement.fragment.col],
                "config": {
                    "depth": placement.fragment.config.depth,
                    "width": placement.fragment.config.width,
                },
                "words": placement.fragment.words,
                "allocated_words": placement.fragment.allocated_words,
                "width_bits": placement.fragment.width_bits,
                "word_offset": placement.fragment.word_offset,
                "bit_offset": placement.fragment.bit_offset,
                "bank_type": placement.bank_type,
                "instance": placement.instance,
                "ports": list(placement.ports),
                "base_word": placement.base_word,
            }
            for placement in detailed.placements
        ],
    }


def detailed_mapping_from_dict(data: Mapping[str, Any]) -> DetailedMapping:
    """Rebuild a :class:`DetailedMapping` from :func:`detailed_mapping_to_dict`."""
    _check_kind(data, "detailed_mapping")
    placements = []
    for entry in _require(data, "placements", "detailed mapping"):
        config = _require(entry, "config", "placement")
        grid = entry.get("grid", [0, 0])
        ports = tuple(int(p) for p in _require(entry, "ports", "placement"))
        fragment = Fragment(
            structure=_require(entry, "structure", "placement"),
            region=_require(entry, "region", "placement"),
            row=int(grid[0]),
            col=int(grid[1]),
            config=MemoryConfig(int(config["depth"]), int(config["width"])),
            words=int(_require(entry, "words", "placement")),
            allocated_words=int(_require(entry, "allocated_words", "placement")),
            width_bits=int(_require(entry, "width_bits", "placement")),
            # The schema does not carry the port charge explicitly; a placed
            # fragment always holds exactly the ports it demanded.
            port_demand=len(ports),
            word_offset=int(entry.get("word_offset", 0)),
            bit_offset=int(entry.get("bit_offset", 0)),
        )
        placements.append(
            PlacedFragment(
                fragment=fragment,
                bank_type=_require(entry, "bank_type", "placement"),
                instance=int(_require(entry, "instance", "placement")),
                ports=ports,
                base_word=int(_require(entry, "base_word", "placement")),
            )
        )
    return DetailedMapping(
        design_name=_require(data, "design", "detailed mapping"),
        board_name=_require(data, "board", "detailed mapping"),
        placements=tuple(placements),
    )


def mapping_result_to_dict(result: MappingResult) -> Dict[str, Any]:
    """Serialise a full :class:`MappingResult` (both stages plus costs)."""
    return {
        "kind": "mapping_result",
        "schema_version": SCHEMA_VERSION,
        "design": design_to_dict(result.design),
        "board": board_to_dict(result.board),
        "global_mapping": global_mapping_to_dict(result.global_mapping),
        "detailed_mapping": detailed_mapping_to_dict(result.detailed_mapping),
        "cost": result.cost.as_dict(),
        "global_time": result.global_time,
        "detailed_time": result.detailed_time,
        "retries": result.retries,
        "solve_stats": dict(result.solve_stats),
    }


def mapping_result_from_dict(data: Mapping[str, Any]) -> MappingResult:
    """Rebuild a full :class:`MappingResult` from :func:`mapping_result_to_dict`.

    Used by the engine's on-disk result cache to rehydrate cached jobs and
    by downstream tools that consume ``repro batch --json`` output.
    """
    _check_kind(data, "mapping_result")
    cost = _cost_from_dict(_require(data, "cost", "mapping result"))
    return MappingResult(
        design=design_from_dict(_require(data, "design", "mapping result")),
        board=board_from_dict(_require(data, "board", "mapping result")),
        global_mapping=global_mapping_from_dict(
            _require(data, "global_mapping", "mapping result")
        ),
        detailed_mapping=detailed_mapping_from_dict(
            _require(data, "detailed_mapping", "mapping result")
        ),
        cost=cost,
        global_time=float(data.get("global_time", 0.0)),
        detailed_time=float(data.get("detailed_time", 0.0)),
        retries=int(data.get("retries", 0)),
        solve_stats=dict(data.get("solve_stats") or {}),
    )


# ---------------------------------------------------------------------------
# File helpers
# ---------------------------------------------------------------------------

PathLike = Union[str, Path]


# ---------------------------------------------------------------------------
# Scenario points and grids (the explore subsystem)
# ---------------------------------------------------------------------------

def scenario_point_to_dict(point: "ScenarioPoint") -> Dict[str, Any]:
    """Serialise a :class:`repro.explore.ScenarioPoint`.

    Only the family name, the explicit parameter overrides and the seed
    are stored — the family's defaults fill the rest when the point is
    rebuilt, so documents stay valid when a family grows new parameters.
    """
    return {
        "kind": "scenario_point",
        "schema_version": SCHEMA_VERSION,
        "family": point.family,
        "params": dict(point.params),
        "seed": point.seed,
    }


def scenario_point_from_dict(data: Mapping[str, Any]) -> "ScenarioPoint":
    """Rebuild a scenario point; the family must be registered."""
    from ..explore.scenarios import ExploreError, ScenarioPoint

    _check_kind(data, "scenario_point")
    try:
        return ScenarioPoint(
            family=_require(data, "family", "scenario_point"),
            params=dict(data.get("params") or {}),
            seed=int(data.get("seed", 0)),
        )
    except ExploreError as exc:
        raise SerializationError(f"scenario_point: {exc}") from exc


def scenario_grid_to_dict(grid: "ScenarioGrid") -> Dict[str, Any]:
    """Serialise a :class:`repro.explore.ScenarioGrid` (sweeps and axes)."""
    return {
        "kind": "scenario_grid",
        "schema_version": SCHEMA_VERSION,
        **grid.to_dict(),
    }


def scenario_grid_from_dict(data: Mapping[str, Any]) -> "ScenarioGrid":
    """Rebuild a scenario grid; every family must be registered."""
    from ..explore.grid import ScenarioGrid
    from ..explore.scenarios import ExploreError

    _check_kind(data, "scenario_grid")
    try:
        return ScenarioGrid.from_dict(data)
    except ExploreError as exc:
        raise SerializationError(f"scenario_grid: {exc}") from exc


def save_json(document: Mapping[str, Any], path: PathLike) -> Path:
    """Write a serialised document to ``path`` (pretty-printed JSON)."""
    path = Path(path)
    path.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n",
                    encoding="utf-8")
    return path


def load_json(path: PathLike) -> Dict[str, Any]:
    """Read a JSON document from ``path``."""
    path = Path(path)
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SerializationError(f"{path} is not valid JSON: {exc}") from exc


def load_board(path: PathLike) -> Board:
    """Load a board description from a JSON file."""
    return board_from_dict(load_json(path))


def load_design(path: PathLike) -> Design:
    """Load a design description from a JSON file."""
    return design_from_dict(load_json(path))
