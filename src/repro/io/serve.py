"""Request/response schema of the mapping service (:mod:`repro.serve`).

The serving layer speaks the same versioned JSON dialect as the rest of
:mod:`repro.io`: a client submits a **job submission** (the board, design
and solver configuration of one mapping request plus serving metadata —
priority, deadline), the server answers with **job status** documents
while the job moves through the queue, and the finished **result** is the
exact :class:`repro.engine.jobs.JobResult` document the batch CLI emits,
so a served mapping and a locally-run one can be compared field by field
(most importantly by fingerprint).

Round-tripping a submission or status through its ``*_to_dict`` /
``*_from_dict`` pair reproduces an equal object; the test suite pins
this the same way it pins the board/design schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional

from .serialize import (
    SCHEMA_VERSION,
    SerializationError,
    _check_kind,
    _require,
    board_to_dict,
    design_to_dict,
)

__all__ = [
    "JOB_STATES",
    "STATE_QUEUED",
    "STATE_RUNNING",
    "STATE_DONE",
    "STATE_CANCELLED",
    "STATE_EXPIRED",
    "JobSubmission",
    "JobStatus",
    "job_submission_to_dict",
    "job_submission_from_dict",
    "job_status_to_dict",
    "job_status_from_dict",
]

#: Lifecycle states of a served job.  ``done`` is terminal in every case;
#: the engine-level outcome (``ok``/``failed``/``error``/``timeout``) then
#: lives in :attr:`JobStatus.result_status`.
STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_DONE = "done"
STATE_CANCELLED = "cancelled"
STATE_EXPIRED = "expired"
JOB_STATES = (
    STATE_QUEUED,
    STATE_RUNNING,
    STATE_DONE,
    STATE_CANCELLED,
    STATE_EXPIRED,
)

#: States a job can never leave.
TERMINAL_STATES = (STATE_DONE, STATE_CANCELLED, STATE_EXPIRED)


@dataclass(frozen=True)
class JobSubmission:
    """One mapping request as a client hands it to the service.

    The board and design travel as their serialised documents (see
    :func:`repro.io.board_to_dict` / :func:`repro.io.design_to_dict`), so a
    submission is self-contained JSON end to end and its canonical hash is
    exactly the engine's cache key for the equivalent
    :class:`~repro.engine.jobs.MappingJob`.
    """

    board: Mapping[str, Any]
    design: Mapping[str, Any]
    weights: Mapping[str, Any] = field(
        default_factory=lambda: {
            "latency": 1.0,
            "pin_delay": 1.0,
            "pin_io": 1.0,
            "normalize": True,
        }
    )
    solver: str = "auto"
    solver_options: Mapping[str, Any] = field(default_factory=dict)
    capacity_mode: str = "strict"
    port_estimation: str = "paper"
    warm_start: bool = True
    warm_retries: bool = True
    mode: str = "pipeline"
    #: Relative optimality-gap contract of fast-mode jobs (``None`` keeps
    #: the pipeline default, 0.05).  Ignored outside ``mode="fast"``.
    gap_limit: Optional[float] = None
    label: str = ""
    #: Per-job wall-clock budget in seconds (tightens the solver limit).
    timeout: Optional[float] = None
    #: Queue priority; higher runs earlier.  Ties keep submission order.
    priority: int = 0
    #: Milliseconds the job may wait in the queue before the service gives
    #: up and reports it ``expired`` instead of solving it late.
    deadline_ms: Optional[float] = None

    @classmethod
    def from_objects(cls, board, design, **kwargs) -> "JobSubmission":
        """Build a submission from live ``Board``/``Design`` objects."""
        return cls(
            board=board_to_dict(board), design=design_to_dict(design), **kwargs
        )

    def display_label(self) -> str:
        if self.label:
            return self.label
        board = self.board.get("name", "?") if isinstance(self.board, Mapping) else "?"
        design = (
            self.design.get("name", "?") if isinstance(self.design, Mapping) else "?"
        )
        return f"{design}@{board}"


@dataclass
class JobStatus:
    """Where one served job currently is, as reported by the service."""

    job_id: str
    state: str
    label: str = ""
    priority: int = 0
    #: Canonical input hash of the underlying mapping job (the engine's
    #: cache key); equal keys mean the service solved them once.
    cache_key: str = ""
    #: The submission attached to an identical job already in flight
    #: instead of enqueueing a duplicate solve.
    deduped: bool = False
    #: The result came straight from the in-memory or on-disk store.
    cache_hit: bool = False
    #: Unix timestamps (seconds); ``None`` until the phase is reached.
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Engine-level outcome once ``state == "done"``:
    #: ``ok``/``failed``/``error``/``timeout``.
    result_status: str = ""
    objective: Optional[float] = None
    #: Certified optimality gap of a fast-mode result (``objective``
    #: versus the solver's lower bound); ``None`` for exact jobs.
    gap: Optional[float] = None
    fingerprint: Optional[str] = None
    error: str = ""

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def latency_ms(self) -> Optional[float]:
        """Submission-to-finish latency in milliseconds, once finished."""
        if self.finished_at is None:
            return None
        return (self.finished_at - self.submitted_at) * 1000.0

    def advanced(self, **changes) -> "JobStatus":
        return replace(self, **changes)


def job_submission_to_dict(submission: JobSubmission) -> Dict[str, Any]:
    """Serialise a :class:`JobSubmission` into a JSON-compatible dict."""
    return {
        "kind": "job_submission",
        "schema_version": SCHEMA_VERSION,
        "board": dict(submission.board),
        "design": dict(submission.design),
        "weights": dict(submission.weights),
        "solver": submission.solver,
        "solver_options": dict(submission.solver_options),
        "capacity_mode": submission.capacity_mode,
        "port_estimation": submission.port_estimation,
        "warm_start": submission.warm_start,
        "warm_retries": submission.warm_retries,
        "mode": submission.mode,
        "gap_limit": submission.gap_limit,
        "label": submission.label,
        "timeout": submission.timeout,
        "priority": submission.priority,
        "deadline_ms": submission.deadline_ms,
    }


def _number(data: Mapping[str, Any], key: str, cast, default, context: str):
    value = data.get(key, default)
    if value is None or value is default:
        return value
    try:
        return cast(value)
    except (TypeError, ValueError):
        raise SerializationError(f"{context}: field {key!r} must be a number, "
                                 f"got {value!r}")


def job_submission_from_dict(data: Mapping[str, Any]) -> JobSubmission:
    """Rebuild a :class:`JobSubmission` from its serialised form.

    Any malformed shape — a non-object document, a non-numeric priority,
    a string where a board document belongs — raises
    :class:`SerializationError`, which the HTTP layer reports as a 400:
    client garbage must never read as a server bug.
    """
    if not isinstance(data, Mapping):
        raise SerializationError(
            f"job_submission: expected a JSON object, got {type(data).__name__}"
        )
    _check_kind(data, "job_submission")
    board = _require(data, "board", "job_submission")
    design = _require(data, "design", "job_submission")
    if not isinstance(board, Mapping) or not isinstance(design, Mapping):
        raise SerializationError(
            "job_submission: board and design must be serialised documents"
        )
    weights = data.get("weights") or {
        "latency": 1.0, "pin_delay": 1.0, "pin_io": 1.0, "normalize": True
    }
    solver_options = data.get("solver_options") or {}
    if not isinstance(weights, Mapping) or not isinstance(solver_options, Mapping):
        raise SerializationError(
            "job_submission: weights and solver_options must be objects"
        )
    mode = data.get("mode", "pipeline")
    if mode not in ("pipeline", "complete", "fast"):
        raise SerializationError(f"job_submission: unknown mode {mode!r}")
    gap_limit = _number(data, "gap_limit", float, None, "job_submission")
    if gap_limit is not None and gap_limit < 0:
        raise SerializationError("job_submission: gap_limit must be >= 0")
    return JobSubmission(
        board=dict(board),
        design=dict(design),
        weights=dict(weights),
        solver=str(data.get("solver", "auto")),
        solver_options=dict(solver_options),
        capacity_mode=str(data.get("capacity_mode", "strict")),
        port_estimation=str(data.get("port_estimation", "paper")),
        warm_start=bool(data.get("warm_start", True)),
        warm_retries=bool(data.get("warm_retries", True)),
        mode=mode,
        gap_limit=gap_limit,
        label=str(data.get("label", "")),
        timeout=_number(data, "timeout", float, None, "job_submission"),
        priority=_number(data, "priority", int, 0, "job_submission") or 0,
        deadline_ms=_number(data, "deadline_ms", float, None, "job_submission"),
    )


def job_status_to_dict(status: JobStatus) -> Dict[str, Any]:
    """Serialise a :class:`JobStatus` into a JSON-compatible dict."""
    return {
        "kind": "job_status",
        "schema_version": SCHEMA_VERSION,
        "job_id": status.job_id,
        "state": status.state,
        "label": status.label,
        "priority": status.priority,
        "cache_key": status.cache_key,
        "deduped": status.deduped,
        "cache_hit": status.cache_hit,
        "submitted_at": status.submitted_at,
        "started_at": status.started_at,
        "finished_at": status.finished_at,
        "result_status": status.result_status,
        "objective": status.objective,
        "gap": status.gap,
        "fingerprint": status.fingerprint,
        "error": status.error,
        "latency_ms": status.latency_ms,
    }


def job_status_from_dict(data: Mapping[str, Any]) -> JobStatus:
    """Rebuild a :class:`JobStatus` from its serialised form."""
    if not isinstance(data, Mapping):
        raise SerializationError(
            f"job_status: expected a JSON object, got {type(data).__name__}"
        )
    _check_kind(data, "job_status")
    state = _require(data, "state", "job_status")
    if state not in JOB_STATES:
        raise SerializationError(f"job_status: unknown state {state!r}")
    started = data.get("started_at")
    finished = data.get("finished_at")
    objective = data.get("objective")
    gap = data.get("gap")
    return JobStatus(
        job_id=str(_require(data, "job_id", "job_status")),
        state=state,
        label=str(data.get("label", "")),
        priority=int(data.get("priority", 0)),
        cache_key=str(data.get("cache_key", "")),
        deduped=bool(data.get("deduped", False)),
        cache_hit=bool(data.get("cache_hit", False)),
        submitted_at=float(data.get("submitted_at", 0.0)),
        started_at=None if started is None else float(started),
        finished_at=None if finished is None else float(finished),
        result_status=str(data.get("result_status", "")),
        objective=None if objective is None else float(objective),
        gap=None if gap is None else float(gap),
        fingerprint=data.get("fingerprint"),
        error=str(data.get("error", "")),
    )
