"""The versioned wire API (v1) of the mapping serve tier.

Everything that crosses the wire between clients, the router and the
replicas speaks one schema: each document is a JSON object carrying its
``kind`` and an explicit wire version ``"v": 1``.  The three document
types are typed dataclasses with a single serialisation pair each —
``to_wire()`` produces the JSON-compatible dict, ``from_wire()`` rebuilds
the object:

* :class:`JobSubmission` — one mapping request (board, design, solver
  configuration, serving metadata),
* :class:`JobStatus` — where a served job currently is,
* :class:`HealthReport` — the ``/healthz`` document of a service or
  router.

Versioning rules (see CONTRIBUTING, "Evolving the wire schema"):

* every document carries ``"v"``; a request missing it or claiming a
  version this library does not support raises
  :class:`WireVersionError`, which the HTTP layer answers with a
  *structured* 400 listing ``supported_versions`` — never a crash;
* readers are **unknown-field tolerant**: fields a peer added in a later
  minor revision are ignored, so the schema can grow additively without
  breaking older binaries.

The finished **result** document is the exact
:class:`repro.engine.jobs.JobResult` document the batch CLI emits
(stamped with ``"v"`` by the HTTP layer), so a served mapping and a
locally-run one compare field by field — most importantly by fingerprint.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .serialize import (
    SerializationError,
    _require,
    board_to_dict,
    design_to_dict,
)

__all__ = [
    "WIRE_VERSION",
    "SUPPORTED_WIRE_VERSIONS",
    "WireVersionError",
    "check_wire_version",
    "JOB_STATES",
    "STATE_QUEUED",
    "STATE_RUNNING",
    "STATE_DONE",
    "STATE_CANCELLED",
    "STATE_EXPIRED",
    "JobSubmission",
    "JobStatus",
    "HealthReport",
]

#: The wire-schema version this library speaks and emits.
WIRE_VERSION = 1

#: Every version this library can read.  Additive (minor) evolution keeps
#: this a single entry; a breaking change appends a new version and keeps
#: reading the old ones for a deprecation window.
SUPPORTED_WIRE_VERSIONS: Tuple[int, ...] = (1,)

#: Lifecycle states of a served job.  ``done`` is terminal in every case;
#: the engine-level outcome (``ok``/``failed``/``error``/``timeout``) then
#: lives in :attr:`JobStatus.result_status`.
STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_DONE = "done"
STATE_CANCELLED = "cancelled"
STATE_EXPIRED = "expired"
JOB_STATES = (
    STATE_QUEUED,
    STATE_RUNNING,
    STATE_DONE,
    STATE_CANCELLED,
    STATE_EXPIRED,
)

#: States a job can never leave.
TERMINAL_STATES = (STATE_DONE, STATE_CANCELLED, STATE_EXPIRED)


class WireVersionError(SerializationError):
    """A document missing the wire version or claiming an unsupported one.

    The HTTP layer turns this into a structured 400 carrying
    :attr:`supported_versions`, so an older server facing a future client
    degrades into an actionable error instead of a crash or a silent
    misread.
    """

    def __init__(self, message: str, got: Optional[Any] = None) -> None:
        super().__init__(message)
        self.got = got
        self.supported_versions: Tuple[int, ...] = SUPPORTED_WIRE_VERSIONS


def check_wire_version(data: Mapping[str, Any], context: str) -> None:
    """Validate the ``"v"`` field of an incoming wire document."""
    if "v" not in data:
        raise WireVersionError(
            f"{context}: document carries no wire version "
            f"(expected \"v\" in {list(SUPPORTED_WIRE_VERSIONS)})"
        )
    version = data["v"]
    if not isinstance(version, int) or isinstance(version, bool) \
            or version not in SUPPORTED_WIRE_VERSIONS:
        raise WireVersionError(
            f"{context}: unsupported wire version {version!r} "
            f"(supported: {list(SUPPORTED_WIRE_VERSIONS)})",
            got=version,
        )


def _check_wire(data: Any, kind: str) -> None:
    """Shared preamble of every ``from_wire``: shape, version, kind."""
    if not isinstance(data, Mapping):
        raise SerializationError(
            f"{kind}: expected a JSON object, got {type(data).__name__}"
        )
    # Version first: a future-version document of *any* kind must surface
    # as the structured version error, not as a kind mismatch.
    check_wire_version(data, kind)
    got = data.get("kind")
    if got != kind:
        raise SerializationError(
            f"expected a {kind!r} document, got kind={got!r}"
        )


def _number(data: Mapping[str, Any], key: str, cast, default, context: str):
    value = data.get(key, default)
    if value is None or value is default:
        return value
    try:
        return cast(value)
    except (TypeError, ValueError):
        raise SerializationError(f"{context}: field {key!r} must be a number, "
                                 f"got {value!r}")


@dataclass(frozen=True)
class JobSubmission:
    """One mapping request as a client hands it to the serve tier.

    The board and design travel as their serialised documents (see
    :func:`repro.io.board_to_dict` / :func:`repro.io.design_to_dict`), so a
    submission is self-contained JSON end to end and its canonical hash is
    exactly the engine's cache key for the equivalent
    :class:`~repro.engine.jobs.MappingJob`.
    """

    board: Mapping[str, Any]
    design: Mapping[str, Any]
    weights: Mapping[str, Any] = field(
        default_factory=lambda: {
            "latency": 1.0,
            "pin_delay": 1.0,
            "pin_io": 1.0,
            "normalize": True,
        }
    )
    solver: str = "auto"
    solver_options: Mapping[str, Any] = field(default_factory=dict)
    capacity_mode: str = "strict"
    port_estimation: str = "paper"
    warm_start: bool = True
    warm_retries: bool = True
    mode: str = "pipeline"
    #: Relative optimality-gap contract of fast-mode jobs (``None`` keeps
    #: the pipeline default, 0.05).  Ignored outside ``mode="fast"``.
    gap_limit: Optional[float] = None
    label: str = ""
    #: Per-job wall-clock budget in seconds (tightens the solver limit).
    timeout: Optional[float] = None
    #: Queue priority; higher runs earlier.  Ties keep submission order.
    #: Under router overload, jobs below the shed threshold are the first
    #: to be refused.
    priority: int = 0
    #: Milliseconds the job may wait in the queue before the service gives
    #: up and reports it ``expired`` instead of solving it late.
    deadline_ms: Optional[float] = None

    @classmethod
    def from_objects(cls, board, design, **kwargs) -> "JobSubmission":
        """Build a submission from live ``Board``/``Design`` objects."""
        return cls(
            board=board_to_dict(board), design=design_to_dict(design), **kwargs
        )

    def display_label(self) -> str:
        if self.label:
            return self.label
        board = self.board.get("name", "?") if isinstance(self.board, Mapping) else "?"
        design = (
            self.design.get("name", "?") if isinstance(self.design, Mapping) else "?"
        )
        return f"{design}@{board}"

    # ------------------------------------------------------------------ wire
    def to_wire(self) -> Dict[str, Any]:
        """Serialise into the v1 wire document."""
        return {
            "kind": "job_submission",
            "v": WIRE_VERSION,
            "board": dict(self.board),
            "design": dict(self.design),
            "weights": dict(self.weights),
            "solver": self.solver,
            "solver_options": dict(self.solver_options),
            "capacity_mode": self.capacity_mode,
            "port_estimation": self.port_estimation,
            "warm_start": self.warm_start,
            "warm_retries": self.warm_retries,
            "mode": self.mode,
            "gap_limit": self.gap_limit,
            "label": self.label,
            "timeout": self.timeout,
            "priority": self.priority,
            "deadline_ms": self.deadline_ms,
        }

    @classmethod
    def from_wire(cls, data: Any) -> "JobSubmission":
        """Rebuild a submission from its wire document.

        Any malformed shape — a non-object document, a non-numeric
        priority, a string where a board document belongs — raises
        :class:`SerializationError`, which the HTTP layer reports as a
        400: client garbage must never read as a server bug.  Unknown
        fields are ignored (forward compatibility).
        """
        _check_wire(data, "job_submission")
        board = _require(data, "board", "job_submission")
        design = _require(data, "design", "job_submission")
        if not isinstance(board, Mapping) or not isinstance(design, Mapping):
            raise SerializationError(
                "job_submission: board and design must be serialised documents"
            )
        weights = data.get("weights") or {
            "latency": 1.0, "pin_delay": 1.0, "pin_io": 1.0, "normalize": True
        }
        solver_options = data.get("solver_options") or {}
        if not isinstance(weights, Mapping) or not isinstance(solver_options, Mapping):
            raise SerializationError(
                "job_submission: weights and solver_options must be objects"
            )
        mode = data.get("mode", "pipeline")
        if mode not in ("pipeline", "complete", "fast"):
            raise SerializationError(f"job_submission: unknown mode {mode!r}")
        gap_limit = _number(data, "gap_limit", float, None, "job_submission")
        if gap_limit is not None and gap_limit < 0:
            raise SerializationError("job_submission: gap_limit must be >= 0")
        return cls(
            board=dict(board),
            design=dict(design),
            weights=dict(weights),
            solver=str(data.get("solver", "auto")),
            solver_options=dict(solver_options),
            capacity_mode=str(data.get("capacity_mode", "strict")),
            port_estimation=str(data.get("port_estimation", "paper")),
            warm_start=bool(data.get("warm_start", True)),
            warm_retries=bool(data.get("warm_retries", True)),
            mode=mode,
            gap_limit=gap_limit,
            label=str(data.get("label", "")),
            timeout=_number(data, "timeout", float, None, "job_submission"),
            priority=_number(data, "priority", int, 0, "job_submission") or 0,
            deadline_ms=_number(data, "deadline_ms", float, None, "job_submission"),
        )


@dataclass
class JobStatus:
    """Where one served job currently is, as reported by the serve tier."""

    job_id: str
    state: str
    label: str = ""
    priority: int = 0
    #: Canonical input hash of the underlying mapping job (the engine's
    #: cache key); equal keys mean the serve tier solved them once.
    cache_key: str = ""
    #: The submission attached to an identical job already in flight
    #: instead of enqueueing a duplicate solve.
    deduped: bool = False
    #: The result came straight from the in-memory or on-disk store.
    cache_hit: bool = False
    #: Unix timestamps (seconds); ``None`` until the phase is reached.
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Engine-level outcome once ``state == "done"``:
    #: ``ok``/``failed``/``error``/``timeout``.
    result_status: str = ""
    objective: Optional[float] = None
    #: Certified optimality gap of a fast-mode result (``objective``
    #: versus the solver's lower bound); ``None`` for exact jobs.
    gap: Optional[float] = None
    fingerprint: Optional[str] = None
    #: Name of the replica that served the job (router deployments only;
    #: empty for a single-process service).
    replica: str = ""
    error: str = ""

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def latency_ms(self) -> Optional[float]:
        """Submission-to-finish latency in milliseconds, once finished."""
        if self.finished_at is None:
            return None
        return (self.finished_at - self.submitted_at) * 1000.0

    def advanced(self, **changes) -> "JobStatus":
        return replace(self, **changes)

    # ------------------------------------------------------------------ wire
    def to_wire(self) -> Dict[str, Any]:
        """Serialise into the v1 wire document."""
        return {
            "kind": "job_status",
            "v": WIRE_VERSION,
            "job_id": self.job_id,
            "state": self.state,
            "label": self.label,
            "priority": self.priority,
            "cache_key": self.cache_key,
            "deduped": self.deduped,
            "cache_hit": self.cache_hit,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "result_status": self.result_status,
            "objective": self.objective,
            "gap": self.gap,
            "fingerprint": self.fingerprint,
            "replica": self.replica,
            "error": self.error,
            "latency_ms": self.latency_ms,
        }

    @classmethod
    def from_wire(cls, data: Any) -> "JobStatus":
        """Rebuild a status from its wire document (unknown fields ignored)."""
        _check_wire(data, "job_status")
        state = _require(data, "state", "job_status")
        if state not in JOB_STATES:
            raise SerializationError(f"job_status: unknown state {state!r}")
        started = data.get("started_at")
        finished = data.get("finished_at")
        objective = data.get("objective")
        gap = data.get("gap")
        return cls(
            job_id=str(_require(data, "job_id", "job_status")),
            state=state,
            label=str(data.get("label", "")),
            priority=int(data.get("priority", 0)),
            cache_key=str(data.get("cache_key", "")),
            deduped=bool(data.get("deduped", False)),
            cache_hit=bool(data.get("cache_hit", False)),
            submitted_at=float(data.get("submitted_at", 0.0)),
            started_at=None if started is None else float(started),
            finished_at=None if finished is None else float(finished),
            result_status=str(data.get("result_status", "")),
            objective=None if objective is None else float(objective),
            gap=None if gap is None else float(gap),
            fingerprint=data.get("fingerprint"),
            replica=str(data.get("replica", "")),
            error=str(data.get("error", "")),
        )


@dataclass
class HealthReport:
    """The ``/healthz`` document of one service replica or of the router.

    One typed shape for both roles: a replica reports its queue/engine
    state, the router reports ring membership plus per-replica summaries
    under :attr:`replicas` and the *aggregate* counters of the fleet.
    Role-specific detail that does not need schema stability lives in
    :attr:`details`; unknown top-level fields a newer peer might add are
    preserved in :attr:`extra` (forward compatibility).
    """

    status: str = "ok"
    #: ``"service"`` (one replica / single-process server) or ``"router"``.
    role: str = "service"
    uptime_seconds: float = 0.0
    queue_depth: int = 0
    inflight: int = 0
    workers: int = 0
    counters: Dict[str, int] = field(default_factory=dict)
    #: Result-store statistics (tiers, hits) of a service; ``None`` for a
    #: router.
    store: Optional[Dict[str, Any]] = None
    #: Role-specific diagnostics (batching config, ring layout, records).
    details: Dict[str, Any] = field(default_factory=dict)
    #: Per-replica summaries, router role only.
    replicas: Optional[List[Dict[str, Any]]] = None
    #: Unknown top-level wire fields, preserved verbatim.
    extra: Dict[str, Any] = field(default_factory=dict)

    _KNOWN = frozenset({
        "kind", "v", "status", "role", "uptime_seconds", "queue_depth",
        "inflight", "workers", "counters", "store", "details", "replicas",
    })

    def to_wire(self) -> Dict[str, Any]:
        """Serialise into the v1 wire document."""
        document: Dict[str, Any] = {
            "kind": "health_report",
            "v": WIRE_VERSION,
            "status": self.status,
            "role": self.role,
            "uptime_seconds": self.uptime_seconds,
            "queue_depth": self.queue_depth,
            "inflight": self.inflight,
            "workers": self.workers,
            "counters": dict(self.counters),
            "store": self.store,
            "details": dict(self.details),
        }
        if self.replicas is not None:
            document["replicas"] = [dict(entry) for entry in self.replicas]
        document.update(self.extra)
        return document

    @classmethod
    def from_wire(cls, data: Any) -> "HealthReport":
        """Rebuild a report from its wire document (unknown fields kept)."""
        _check_wire(data, "health_report")
        replicas = data.get("replicas")
        if replicas is not None and not isinstance(replicas, Sequence):
            raise SerializationError("health_report: replicas must be a list")
        store = data.get("store")
        if store is not None and not isinstance(store, Mapping):
            raise SerializationError("health_report: store must be an object")
        details = data.get("details") or {}
        counters = data.get("counters") or {}
        if not isinstance(details, Mapping) or not isinstance(counters, Mapping):
            raise SerializationError(
                "health_report: counters and details must be objects"
            )
        return cls(
            status=str(data.get("status", "ok")),
            role=str(data.get("role", "service")),
            uptime_seconds=float(data.get("uptime_seconds", 0.0)),
            queue_depth=int(data.get("queue_depth", 0)),
            inflight=int(data.get("inflight", 0)),
            workers=int(data.get("workers", 0)),
            counters=dict(counters),
            store=None if store is None else dict(store),
            details=dict(details),
            replicas=(
                None if replicas is None else [dict(entry) for entry in replicas]
            ),
            extra={k: v for k, v in data.items() if k not in cls._KNOWN},
        )
