"""Human-readable reports of mapping results.

Besides the machine-readable JSON output of :mod:`repro.io`, users of a
memory mapper usually want to *look* at a mapping: which structure went
where, how full every physical bank instance is, and how the cost breaks
down.  This module renders those views as plain text:

* :func:`render_assignment` — the global type assignment grouped by bank
  type, with per-type port and capacity utilisation,
* :func:`render_memory_map` — one line per used bank instance showing an
  occupancy bar and the fragments (structure, configuration, base address)
  placed on it, and
* :func:`render_full_report` — both of the above plus the cost breakdown,
  which is what the command-line interface prints.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

from ..arch.board import Board
from ..design.design import Design
from .mapping import DetailedMapping, GlobalMapping, MappingResult
from .preprocess import Preprocessor

__all__ = ["render_assignment", "render_memory_map", "render_full_report"]


def render_assignment(
    design: Design,
    board: Board,
    mapping: GlobalMapping,
    preprocessor: Optional[Preprocessor] = None,
) -> str:
    """Render the global assignment with per-type utilisation figures."""
    preprocessor = preprocessor or Preprocessor(design, board)
    lines = [f"Global assignment of {design.name!r} onto {board.name!r}:"]
    grouped = mapping.grouped_by_type()
    for bank in board.bank_types:
        members = sorted(grouped.get(bank.name, []))
        used_ports = 0
        used_bits = 0
        for name in members:
            d_index = design.index_of(name)
            t_index = board.type_index(bank.name)
            used_ports += int(preprocessor.cp[d_index, t_index])
            used_bits += int(
                preprocessor.cw[d_index, t_index] * preprocessor.cd[d_index, t_index]
            )
        port_pct = 100.0 * used_ports / bank.total_ports if bank.total_ports else 0.0
        bits_pct = (
            100.0 * used_bits / bank.total_capacity_bits
            if bank.total_capacity_bits
            else 0.0
        )
        lines.append(
            f"  {bank.name:24s} {len(members):3d} structures   "
            f"ports {used_ports}/{bank.total_ports} ({port_pct:.0f}%)   "
            f"capacity {used_bits}/{bank.total_capacity_bits} bits ({bits_pct:.0f}%)"
        )
        for name in members:
            ds = design.by_name(name)
            lines.append(f"      - {name} ({ds.depth}x{ds.width})")
    return "\n".join(lines)


def _occupancy_bar(used_bits: int, capacity_bits: int, width: int = 24) -> str:
    if capacity_bits <= 0:
        return "[" + " " * width + "]"
    filled = int(round(width * min(1.0, used_bits / capacity_bits)))
    return "[" + "#" * filled + "." * (width - filled) + "]"


def render_memory_map(
    board: Board,
    detailed: DetailedMapping,
    max_instances_per_type: int = 64,
) -> str:
    """Render per-instance occupancy of every bank instance that is used."""
    lines = [f"Memory map of {detailed.design_name!r} on {detailed.board_name!r}:"]
    by_instance: Dict[str, Dict[int, List]] = defaultdict(lambda: defaultdict(list))
    for placement in detailed.placements:
        by_instance[placement.bank_type][placement.instance].append(placement)

    for bank in board.bank_types:
        instances = by_instance.get(bank.name)
        if not instances:
            continue
        lines.append(
            f"  {bank.name} ({bank.num_instances} instances x {bank.capacity_bits} bits, "
            f"{bank.num_ports} ports):"
        )
        shown = 0
        for index in sorted(instances):
            if shown >= max_instances_per_type:
                lines.append(
                    f"    ... {len(instances) - shown} more instances not shown"
                )
                break
            placements = instances[index]
            used_bits = sum(p.fragment.allocated_bits for p in placements)
            used_ports = sum(len(p.ports) for p in placements)
            bar = _occupancy_bar(used_bits, bank.capacity_bits)
            lines.append(
                f"    #{index:<4d} {bar} {used_bits:>8d} bits, "
                f"{used_ports}/{bank.num_ports} ports"
            )
            for placement in sorted(placements, key=lambda p: p.base_word):
                fragment = placement.fragment
                ports = ",".join(str(p) for p in placement.ports)
                lines.append(
                    f"           {fragment.structure:20s} {str(fragment.config):>8s} "
                    f"words {placement.base_word}..{placement.end_word - 1} "
                    f"ports[{ports}] ({fragment.region})"
                )
            shown += 1
    lines.append(
        f"  total: {detailed.num_fragments} fragments on "
        f"{detailed.instances_used()} instances"
    )
    return "\n".join(lines)


def render_full_report(result: MappingResult) -> str:
    """The complete plain-text report the CLI prints after a mapping run."""
    cost = result.cost
    header = [
        f"=== Memory mapping report: {result.design.name!r} on {result.board.name!r} ===",
        f"solver status     : {result.global_mapping.solver_status}",
        f"weighted objective: {cost.weighted_total:.4f}",
        f"  latency cost    : {cost.latency:.1f}",
        f"  pin-delay cost  : {cost.pin_delay:.1f}",
        f"  pin-I/O cost    : {cost.pin_io:.1f}",
        f"global solve time : {result.global_time:.3f}s"
        + (f" (+{result.retries} retries)" if result.retries else ""),
        f"detailed map time : {result.detailed_time:.3f}s",
    ]
    stats = result.solve_stats
    if stats and stats.get("mode") == "fast":
        gap = stats.get("gap")
        header.insert(
            2,
            "mode              : fast (certified gap "
            + (f"{float(gap) * 100.0:.2f}%" if isinstance(gap, (int, float)) else "n/a")
            + ")",
        )
    if stats:
        header.append(
            "solver work       : {lp} LP solves / {nodes} nodes across {solves} "
            "global solve(s)".format(
                lp=stats.get("lp_solves", 0),
                nodes=stats.get("nodes_explored", 0),
                solves=stats.get("global_solves", 0),
            )
        )
        header.append(
            "presolve          : dropped {rows} rows, fixed {cols} columns".format(
                rows=stats.get("presolve_rows_dropped", 0),
                cols=stats.get("presolve_cols_fixed", 0),
            )
        )
        if stats.get("heuristic_incumbents") or stats.get("lns_rounds"):
            header.append(
                "heuristics        : {inc} incumbent(s) from the portfolio "
                "({dives} dive pivots, {lns} LNS rounds)".format(
                    inc=stats.get("heuristic_incumbents", 0),
                    dives=stats.get("dive_pivots", 0),
                    lns=stats.get("lns_rounds", 0),
                )
            )
        if stats.get("basis_reuses"):
            header.append(
                "basis reuse       : {warm} warm LP re-solves from {reuses} "
                "inherited bases ({refac} refactorizations)".format(
                    warm=stats.get("warm_lp_solves", 0),
                    reuses=stats.get("basis_reuses", 0),
                    refac=stats.get("refactorizations", 0),
                )
            )
        if stats.get("etas_applied"):
            header.append(
                "LU eta file       : {etas} update etas applied "
                "({ft} ftran / {bt} btran non-zeros)".format(
                    etas=stats.get("etas_applied", 0),
                    ft=stats.get("ftran_nnz", 0),
                    bt=stats.get("btran_nnz", 0),
                )
            )
    header.append("")
    body = [
        render_assignment(result.design, result.board, result.global_mapping),
        "",
        render_memory_map(result.board, result.detailed_mapping),
    ]
    return "\n".join(header + body)
