"""The complete ("flat") memory-mapping ILP — the paper's baseline.

The authors' earlier tool ([9] in the paper) solves logical-to-physical
memory mapping in a single step: one ILP simultaneously decides the bank
*type* of every data structure (``Z[d][t]``), the concrete *instances and
ports* it occupies (``X[d][t][i][p]``) and the *configuration* selected for
every used port of every instance (``Y[t][i][p][c]``).  The paper reports
that this formulation "becomes quite lengthy and the solution time explodes
for large problems", which is exactly the behaviour Table 3 / Figure 4
quantify against the global/detailed decomposition.

Reference [9] does not reproduce its full constraint set, so this module
reconstructs the flat formulation from the paper's description of the
variables and of the pre-processed quantities.  The constraints are:

* uniqueness of the type assignment (as in the global formulation),
* port-consumption linking: a structure assigned to a type must receive
  exactly its pre-processed ``CP[d][t]`` ports, spread over that type's
  instances (``sum_{i,p} X[d][t][i][p] = CP[d][t] * Z[d][t]``),
* port exclusivity: every physical port serves at most one structure (the
  paper explicitly excludes arbitration),
* configuration selection: a used port of a multi-configuration bank must
  have exactly one configuration selected,
* per-instance capacity: the space charged to an instance (each consumed
  port carries its structure's footprint share) fits in the instance.

The objective is identical to the global formulation's (the cost depends
only on the chosen *type*), so the optimal objective values of the two
formulations coincide — which is what makes the execution-time comparison
of Table 3 meaningful.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..arch.board import Board
from ..design.design import Design
from ..ilp import Model, Variable, create_solver, quicksum
from .mapping import GlobalMapping, MappingError
from .objective import CostModel, CostWeights
from .preprocess import Preprocessor

__all__ = ["CompleteMapper", "CompleteModelArtifacts", "CompleteMappingOutcome"]


class CompleteModelArtifacts:
    """The flat ILP plus its variable dictionaries (for inspection/tests)."""

    def __init__(
        self,
        model: Model,
        z_vars: Dict[Tuple[str, str], Variable],
        x_vars: Dict[Tuple[str, str, int, int], Variable],
        y_vars: Dict[Tuple[str, int, int, int], Variable],
        preprocessor: Preprocessor,
        cost_model: CostModel,
    ) -> None:
        self.model = model
        self.z_vars = z_vars
        self.x_vars = x_vars
        self.y_vars = y_vars
        self.preprocessor = preprocessor
        self.cost_model = cost_model

    @property
    def num_variables(self) -> int:
        return self.model.num_variables

    @property
    def num_constraints(self) -> int:
        return self.model.num_constraints


@dataclass
class CompleteMappingOutcome:
    """Result of a flat solve: the type assignment plus physical selections."""

    global_mapping: GlobalMapping
    #: ``structure -> list of (type, instance, port)`` physical ports granted
    port_grants: Dict[str, List[Tuple[str, int, int]]] = field(default_factory=dict)
    #: ``(type, instance, port) -> configuration index`` selections
    config_selection: Dict[Tuple[str, int, int], int] = field(default_factory=dict)
    solve_time: float = 0.0
    solver_status: str = "optimal"
    model_size: Dict[str, int] = field(default_factory=dict)


class CompleteMapper:
    """Builds and solves the single-step (flat) mapping ILP."""

    def __init__(
        self,
        board: Board,
        weights: Optional[CostWeights] = None,
        solver: object = "auto",
        solver_options: Optional[Dict[str, object]] = None,
    ) -> None:
        self.board = board
        self.weights = weights or CostWeights()
        self.solver = solver
        self.solver_options = dict(solver_options or {})

    # -------------------------------------------------------------- building
    def build_model(
        self,
        design: Design,
        preprocessor: Optional[Preprocessor] = None,
        cost_model: Optional[CostModel] = None,
    ) -> CompleteModelArtifacts:
        preprocessor = preprocessor or Preprocessor(design, self.board)
        cost_model = cost_model or CostModel(
            design, self.board, self.weights, preprocessor=preprocessor
        )
        feasible = preprocessor.feasible_pairs()
        unmappable = preprocessor.unmappable_structures()
        if unmappable:
            raise MappingError(
                "the following data structures fit on no bank type of board "
                f"{self.board.name!r}: {unmappable}"
            )

        model = Model(name=f"complete[{design.name}@{self.board.name}]")
        coefficients = cost_model.coefficient_matrix()

        z_vars: Dict[Tuple[str, str], Variable] = {}
        x_vars: Dict[Tuple[str, str, int, int], Variable] = {}
        y_vars: Dict[Tuple[str, int, int, int], Variable] = {}

        # ---------------------------------------------------------- variables
        for d_index, ds in enumerate(design.data_structures):
            for t_index, bank in enumerate(self.board.bank_types):
                if not feasible[d_index, t_index]:
                    continue
                z_vars[(ds.name, bank.name)] = model.add_binary(
                    f"Z[{ds.name}|{bank.name}]"
                )
                for instance in range(bank.num_instances):
                    for port in range(bank.num_ports):
                        x_vars[(ds.name, bank.name, instance, port)] = model.add_binary(
                            f"X[{ds.name}|{bank.name}|{instance}|{port}]"
                        )
        for t_index, bank in enumerate(self.board.bank_types):
            if not bank.is_multi_config:
                continue
            for instance in range(bank.num_instances):
                for port in range(bank.num_ports):
                    for config in range(bank.num_configs):
                        y_vars[(bank.name, instance, port, config)] = model.add_binary(
                            f"Y[{bank.name}|{instance}|{port}|{config}]"
                        )

        # ----------------------------------------------------------- uniqueness
        for d_index, ds in enumerate(design.data_structures):
            row = [
                z_vars[(ds.name, bank.name)]
                for bank in self.board.bank_types
                if (ds.name, bank.name) in z_vars
            ]
            model.add_constraint(quicksum(row) == 1, name=f"uniq[{ds.name}]")
            if len(row) > 1:
                model.add_sos1(row, name=f"sos[{ds.name}]")

        # ------------------------------------------- port-consumption linking
        for (ds_name, type_name), z_var in z_vars.items():
            d_index = design.index_of(ds_name)
            t_index = self.board.type_index(type_name)
            bank = self.board.bank_types[t_index]
            cp = int(preprocessor.cp[d_index, t_index])
            ports = [
                x_vars[(ds_name, type_name, instance, port)]
                for instance in range(bank.num_instances)
                for port in range(bank.num_ports)
            ]
            model.add_constraint(
                quicksum(ports) == cp * z_var,
                name=f"consume[{ds_name}|{type_name}]",
            )

        # ------------------------------------------------------ port exclusivity
        for t_index, bank in enumerate(self.board.bank_types):
            for instance in range(bank.num_instances):
                for port in range(bank.num_ports):
                    users = [
                        x_vars[(ds.name, bank.name, instance, port)]
                        for ds in design.data_structures
                        if (ds.name, bank.name, instance, port) in x_vars
                    ]
                    if not users:
                        continue
                    if bank.is_multi_config:
                        configs = [
                            y_vars[(bank.name, instance, port, config)]
                            for config in range(bank.num_configs)
                        ]
                        model.add_constraint(
                            quicksum(configs) <= 1,
                            name=f"onecfg[{bank.name}|{instance}|{port}]",
                        )
                        model.add_constraint(
                            quicksum(users) <= quicksum(configs),
                            name=f"cfgsel[{bank.name}|{instance}|{port}]",
                        )
                    else:
                        model.add_constraint(
                            quicksum(users) <= 1,
                            name=f"excl[{bank.name}|{instance}|{port}]",
                        )

        # --------------------------------------------------- instance capacity
        footprint = preprocessor.consumed_bits_table()
        for t_index, bank in enumerate(self.board.bank_types):
            for instance in range(bank.num_instances):
                terms = []
                for d_index, ds in enumerate(design.data_structures):
                    if (ds.name, bank.name) not in z_vars:
                        continue
                    cp = max(1, int(preprocessor.cp[d_index, t_index]))
                    share = float(footprint[d_index, t_index]) / cp
                    for port in range(bank.num_ports):
                        terms.append(
                            share * x_vars[(ds.name, bank.name, instance, port)]
                        )
                if terms:
                    model.add_constraint(
                        quicksum(terms) <= bank.capacity_bits,
                        name=f"cap[{bank.name}|{instance}]",
                    )

        # -------------------------------------------------------------- objective
        objective_terms = []
        for (ds_name, type_name), z_var in z_vars.items():
            d_index = design.index_of(ds_name)
            t_index = self.board.type_index(type_name)
            objective_terms.append(float(coefficients[d_index, t_index]) * z_var)
        model.set_objective(quicksum(objective_terms))

        return CompleteModelArtifacts(
            model, z_vars, x_vars, y_vars, preprocessor, cost_model
        )

    # ---------------------------------------------------------------- solving
    def solve(
        self,
        design: Design,
        preprocessor: Optional[Preprocessor] = None,
        cost_model: Optional[CostModel] = None,
    ) -> CompleteMappingOutcome:
        """Solve the flat formulation and extract assignment plus port grants."""
        artifacts = self.build_model(
            design, preprocessor=preprocessor, cost_model=cost_model
        )
        start = time.perf_counter()
        if isinstance(self.solver, str) or self.solver is None:
            solver = create_solver(self.solver, **self.solver_options)
        else:
            solver = self.solver
        solution = solver.solve(artifacts.model)
        elapsed = time.perf_counter() - start

        if not solution.is_success:
            raise MappingError(
                f"complete mapping of design {design.name!r} failed: "
                f"solver status {solution.status!r}"
            )

        assignment: Dict[str, str] = {}
        for (ds_name, type_name), var in artifacts.z_vars.items():
            if solution.rounded(var) == 1:
                assignment[ds_name] = type_name
        missing = [
            ds.name for ds in design.data_structures if ds.name not in assignment
        ]
        if missing:
            raise MappingError(f"complete mapper left structures unassigned: {missing}")

        port_grants: Dict[str, List[Tuple[str, int, int]]] = {}
        for (ds_name, type_name, instance, port), var in artifacts.x_vars.items():
            if solution.rounded(var) == 1:
                port_grants.setdefault(ds_name, []).append((type_name, instance, port))
        config_selection: Dict[Tuple[str, int, int], int] = {}
        for (type_name, instance, port, config), var in artifacts.y_vars.items():
            if solution.rounded(var) == 1:
                config_selection[(type_name, instance, port)] = config

        breakdown = artifacts.cost_model.evaluate_assignment(assignment)
        global_mapping = GlobalMapping(
            design_name=design.name,
            board_name=self.board.name,
            assignment=assignment,
            objective=solution.objective,
            cost=breakdown,
            solver_status=solution.status,
            solve_time=elapsed,
            solver_stats=solution.stats.as_dict(),
        )
        return CompleteMappingOutcome(
            global_mapping=global_mapping,
            port_grants=port_grants,
            config_selection=config_selection,
            solve_time=elapsed,
            solver_status=solution.status,
            model_size={
                "variables": artifacts.num_variables,
                "constraints": artifacts.num_constraints,
                "z": len(artifacts.z_vars),
                "x": len(artifacts.x_vars),
                "y": len(artifacts.y_vars),
            },
        )
