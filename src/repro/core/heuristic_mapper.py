"""Heuristic global mappers: greedy best-fit and simulated annealing.

The paper solves global mapping exactly with an ILP.  Two heuristics are
provided alongside the exact mapper for three purposes:

* a **warm start** for the branch-and-bound solver (a feasible incumbent
  makes the tree search on the complete formulation dramatically faster),
* **baselines** for the quality-ablation benchmark (how much does the ILP
  actually buy over a sensible greedy on realistic designs?), and
* a fallback when a user wants an instant answer on very large designs.

Both heuristics respect exactly the constraints of the global ILP (the
pre-processed port and capacity budgets per type), so their output always
survives detailed mapping under the same guarantee as the exact mapper.
"""

from __future__ import annotations

import math
import time
from typing import Dict, Optional, Tuple

import numpy as np

from ..arch.board import Board
from ..design.design import Design
from .mapping import GlobalMapping, MappingError
from .objective import CostModel, CostWeights
from .preprocess import Preprocessor

__all__ = ["GreedyMapper", "SimulatedAnnealingMapper"]


class _BudgetTracker:
    """Remaining port and capacity budget per bank type during construction."""

    def __init__(self, board: Board) -> None:
        self.ports = {bank.name: bank.total_ports for bank in board.bank_types}
        self.bits = {bank.name: bank.total_capacity_bits for bank in board.bank_types}

    def fits(self, type_name: str, ports: int, bits: int) -> bool:
        return self.ports[type_name] >= ports and self.bits[type_name] >= bits

    def commit(self, type_name: str, ports: int, bits: int) -> None:
        self.ports[type_name] -= ports
        self.bits[type_name] -= bits

    def release(self, type_name: str, ports: int, bits: int) -> None:
        self.ports[type_name] += ports
        self.bits[type_name] += bits


class GreedyMapper:
    """Best-fit greedy assignment in decreasing structure-size order.

    Structures are processed from largest to smallest footprint; each is
    assigned to the cheapest (by the weighted objective coefficient) bank
    type that still has enough ports and capacity left.  Runs in
    O(segments x types) after pre-processing.
    """

    def __init__(
        self,
        board: Board,
        weights: Optional[CostWeights] = None,
    ) -> None:
        self.board = board
        self.weights = weights or CostWeights()

    def solve(
        self,
        design: Design,
        preprocessor: Optional[Preprocessor] = None,
        cost_model: Optional[CostModel] = None,
    ) -> GlobalMapping:
        start = time.perf_counter()
        preprocessor = preprocessor or Preprocessor(design, self.board)
        cost_model = cost_model or CostModel(
            design, self.board, self.weights, preprocessor=preprocessor
        )
        coefficients = cost_model.coefficient_matrix()
        feasible = preprocessor.feasible_pairs()
        budget = _BudgetTracker(self.board)

        order = sorted(
            range(design.num_segments),
            key=lambda d: design.data_structures[d].size_bits,
            reverse=True,
        )
        assignment: Dict[str, str] = {}
        for d_index in order:
            ds = design.data_structures[d_index]
            best: Optional[Tuple[float, str, int, int]] = None
            for t_index, bank in enumerate(self.board.bank_types):
                if not feasible[d_index, t_index]:
                    continue
                ports = int(preprocessor.cp[d_index, t_index])
                bits = int(
                    preprocessor.cw[d_index, t_index] * preprocessor.cd[d_index, t_index]
                )
                if not budget.fits(bank.name, ports, bits):
                    continue
                cost = float(coefficients[d_index, t_index])
                if best is None or cost < best[0]:
                    best = (cost, bank.name, ports, bits)
            if best is None:
                raise MappingError(
                    f"greedy mapping failed: no bank type can still hold "
                    f"structure {ds.name!r}"
                )
            _, type_name, ports, bits = best
            budget.commit(type_name, ports, bits)
            assignment[ds.name] = type_name

        breakdown = cost_model.evaluate_assignment(assignment)
        return GlobalMapping(
            design_name=design.name,
            board_name=self.board.name,
            assignment=assignment,
            objective=breakdown.weighted_total,
            cost=breakdown,
            solver_status="heuristic-greedy",
            solve_time=time.perf_counter() - start,
        )


class SimulatedAnnealingMapper:
    """Simulated-annealing refinement of the greedy assignment.

    Moves reassign one structure to another feasible type; only moves that
    keep the port and capacity budgets satisfied are considered, so every
    visited state is a legal global mapping.  The cooling schedule is a
    plain geometric one — the point of this mapper is to serve as an
    informed baseline, not to compete with the exact ILP.
    """

    def __init__(
        self,
        board: Board,
        weights: Optional[CostWeights] = None,
        iterations: int = 2000,
        initial_temperature: float = 1.0,
        cooling: float = 0.995,
        seed: int = 0,
    ) -> None:
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        if not 0.0 < cooling < 1.0:
            raise ValueError("cooling must lie in (0, 1)")
        self.board = board
        self.weights = weights or CostWeights()
        self.iterations = iterations
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.seed = seed

    def solve(
        self,
        design: Design,
        preprocessor: Optional[Preprocessor] = None,
        cost_model: Optional[CostModel] = None,
        initial: Optional[GlobalMapping] = None,
    ) -> GlobalMapping:
        start = time.perf_counter()
        preprocessor = preprocessor or Preprocessor(design, self.board)
        cost_model = cost_model or CostModel(
            design, self.board, self.weights, preprocessor=preprocessor
        )
        coefficients = cost_model.coefficient_matrix()
        feasible = preprocessor.feasible_pairs()

        if initial is None:
            initial = GreedyMapper(self.board, self.weights).solve(
                design, preprocessor=preprocessor, cost_model=cost_model
            )

        rng = np.random.default_rng(self.seed)
        type_names = list(self.board.type_names)
        current = dict(initial.assignment)
        budget = _BudgetTracker(self.board)
        loads: Dict[str, Tuple[int, int]] = {}
        for name, type_name in current.items():
            d_index = design.index_of(name)
            t_index = self.board.type_index(type_name)
            ports = int(preprocessor.cp[d_index, t_index])
            bits = int(preprocessor.cw[d_index, t_index] * preprocessor.cd[d_index, t_index])
            budget.commit(type_name, ports, bits)
            loads[name] = (ports, bits)

        def pair_cost(name: str, type_name: str) -> float:
            d_index = design.index_of(name)
            t_index = self.board.type_index(type_name)
            return float(coefficients[d_index, t_index])

        current_cost = sum(pair_cost(n, t) for n, t in current.items())
        best = dict(current)
        best_cost = current_cost
        temperature = self.initial_temperature
        segment_names = list(current)

        for _ in range(self.iterations):
            name = segment_names[int(rng.integers(len(segment_names)))]
            d_index = design.index_of(name)
            old_type = current[name]
            candidates = [
                t for t_index, t in enumerate(type_names)
                if t != old_type and feasible[d_index, t_index]
            ]
            if not candidates:
                temperature *= self.cooling
                continue
            new_type = candidates[int(rng.integers(len(candidates)))]
            t_index = self.board.type_index(new_type)
            new_ports = int(preprocessor.cp[d_index, t_index])
            new_bits = int(
                preprocessor.cw[d_index, t_index] * preprocessor.cd[d_index, t_index]
            )
            old_ports, old_bits = loads[name]
            budget.release(old_type, old_ports, old_bits)
            if not budget.fits(new_type, new_ports, new_bits):
                budget.commit(old_type, old_ports, old_bits)
                temperature *= self.cooling
                continue
            delta = pair_cost(name, new_type) - pair_cost(name, old_type)
            accept = delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-12))
            if accept:
                budget.commit(new_type, new_ports, new_bits)
                current[name] = new_type
                loads[name] = (new_ports, new_bits)
                current_cost += delta
                if current_cost < best_cost:
                    best_cost = current_cost
                    best = dict(current)
            else:
                budget.commit(old_type, old_ports, old_bits)
            temperature *= self.cooling

        breakdown = cost_model.evaluate_assignment(best)
        return GlobalMapping(
            design_name=design.name,
            board_name=self.board.name,
            assignment=best,
            objective=breakdown.weighted_total,
            cost=breakdown,
            solver_status="heuristic-annealing",
            solve_time=time.perf_counter() - start,
        )
