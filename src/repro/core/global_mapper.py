"""Global memory mapping: the ILP of Section 4.1.

Global mapping assigns every data structure to exactly one bank *type*
using only the ``Z[d][t]`` 0/1 variables.  The pre-processing of
:mod:`repro.core.preprocess` turns the architecture's instance/port/
configuration details into per-pair port and capacity loads, so three
families of linear constraints suffice:

Uniqueness
    :math:`\\sum_t Z_{dt} = 1` for every data structure *d* (each row is
    also declared as an SOS-1 group, which the branch-and-bound solver
    branches on).

Ports
    :math:`\\sum_d Z_{dt} \\cdot CP_{dt} \\le P_t \\cdot I_t` for every type *t*.

Capacity
    :math:`\\sum_d Z_{dt} \\cdot CW_{dt} \\cdot CD_{dt} \\le I_t \\cdot W_t[1] \\cdot D_t[1]`
    for every type *t*.  When conflict information shows that some
    structures can never be live simultaneously, the constraint can be
    applied per conflict clique instead of over all structures
    (``capacity_mode="clique"``), allowing storage overlap as described at
    the end of Section 4.1.2.

The objective is the weighted latency / pin-delay / pin-I/O cost of
:class:`repro.core.objective.CostModel`.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

import numpy as np

from ..arch.board import Board
from ..design.design import Design
from ..ilp import Model, Solution, SolveContext, Variable, create_solver, quicksum
from .mapping import GlobalMapping, MappingError
from .objective import CostModel, CostWeights
from .preprocess import Preprocessor

__all__ = ["GlobalMapper", "GlobalModelArtifacts"]

Pair = Tuple[str, str]


class _GlobalSkeleton:
    """Pre-computed constraint skeleton of one design's global ILP.

    Building a global model costs two very different things: deriving the
    numeric tables (feasibility mask, port charges, footprints, objective
    coefficients, conflict cliques) and instantiating `Model` objects.  The
    tables depend only on (design, board, weights) — never on the forbidden
    pairs the pipeline's retry loop adds — so they are computed once per
    design and reused by every re-build; only the cheap `Model` assembly
    runs again, with forbidden pairs filtered out of the cached candidate
    lists.
    """

    def __init__(
        self,
        design: Design,
        preprocessor: Preprocessor,
        cost_model: CostModel,
        capacity_mode: str,
    ) -> None:
        self.design = design
        self.preprocessor = preprocessor
        self.cost_model = cost_model

        unmappable = preprocessor.unmappable_structures()
        if unmappable:
            raise MappingError(
                "the following data structures fit on no bank type of board "
                f"{preprocessor.board.name!r}: {unmappable}"
            )
        feasible = preprocessor.feasible_pairs()
        #: per-structure admissible (bank name, d_index, t_index) candidates
        self.candidates: List[List[Tuple[str, int, int]]] = []
        board = preprocessor.board
        for d_index, ds in enumerate(design.data_structures):
            row = [
                (bank.name, d_index, t_index)
                for t_index, bank in enumerate(board.bank_types)
                if feasible[d_index, t_index]
            ]
            self.candidates.append(row)
        self.port_coeff = preprocessor.cp
        self.footprint = preprocessor.consumed_bits_table()
        self.coefficients = cost_model.coefficient_matrix()
        if capacity_mode == "strict":
            self.group_sets = [("all", [ds.name for ds in design.data_structures])]
        else:
            cliques = design.conflicts.conflict_cliques(design.data_structures)
            self.group_sets = [(f"clique{i}", clique) for i, clique in enumerate(cliques)]
        #: the unfiltered (no forbidden pairs) model, built once per design;
        #: the solve path reuses it across the pipeline's retries and applies
        #: forbidden pairs as solver-level variable fixings instead of
        #: re-assembling the constraint skeleton.
        self.full_artifacts: Optional["GlobalModelArtifacts"] = None


class GlobalModelArtifacts:
    """The ILP model of a global-mapping instance plus its variable map.

    Exposed separately from :meth:`GlobalMapper.solve` so that tests,
    benchmarks and the solver-ablation study can inspect or re-solve the
    same model with different backends.
    """

    def __init__(
        self,
        model: Model,
        z_vars: Dict[Pair, Variable],
        preprocessor: Preprocessor,
        cost_model: CostModel,
    ) -> None:
        self.model = model
        self.z_vars = z_vars
        self.preprocessor = preprocessor
        self.cost_model = cost_model

    def assignment_from_solution(self, solution: Solution) -> Dict[str, str]:
        """Read the ``structure -> type`` assignment out of a solve result."""
        if not solution.is_success:
            raise MappingError(
                f"global mapping solve failed with status {solution.status!r}"
            )
        assignment: Dict[str, str] = {}
        for (structure, type_name), var in self.z_vars.items():
            if solution.rounded(var) == 1:
                if structure in assignment:
                    raise MappingError(
                        f"structure {structure!r} selected for two types "
                        f"({assignment[structure]!r} and {type_name!r})"
                    )
                assignment[structure] = type_name
        design = self.preprocessor.design
        missing = [ds.name for ds in design.data_structures if ds.name not in assignment]
        if missing:
            raise MappingError(f"structures left unassigned by the solver: {missing}")
        return assignment

    def warm_start_vector(self, assignment: Mapping[str, str]) -> Optional[np.ndarray]:
        """Translate an assignment into a warm-start vector for the solver."""
        values = np.zeros(self.model.num_variables)
        for (structure, type_name), var in self.z_vars.items():
            if assignment.get(structure) == type_name:
                values[var.index] = 1.0
        # Every structure must be covered, otherwise the vector is useless.
        covered = {s for (s, t) in self.z_vars if assignment.get(s) == t}
        if len(covered) != self.preprocessor.design.num_segments:
            return None
        return values


class GlobalMapper:
    """Builds and solves the global-mapping ILP for one board.

    Parameters
    ----------
    board:
        The target architecture.
    weights:
        Objective weights; defaults to normalised equal weighting.
    solver:
        Solver backend name (see :func:`repro.ilp.create_solver`) or a
        solver instance.
    solver_options:
        Keyword options forwarded to the solver factory (time limits etc.).
    capacity_mode:
        ``"strict"`` (default) charges every assigned structure its full
        footprint; ``"clique"`` applies the capacity constraint per
        conflict clique, allowing non-conflicting structures to overlap in
        storage (the relaxation mentioned at the end of Section 4.1.2).
    port_estimation:
        ``"paper"`` (default) uses the Figure 3 port estimate; ``"refined"``
        uses the tighter future-work charge for banks with more than two
        ports (see :class:`repro.core.Preprocessor`).
    """

    def __init__(
        self,
        board: Board,
        weights: Optional[CostWeights] = None,
        solver: object = "auto",
        solver_options: Optional[Dict[str, object]] = None,
        capacity_mode: str = "strict",
        port_estimation: str = "paper",
    ) -> None:
        if capacity_mode not in ("strict", "clique"):
            raise ValueError(f"unknown capacity_mode {capacity_mode!r}")
        self.board = board
        self.weights = weights or CostWeights()
        self.solver = solver
        self.solver_options = dict(solver_options or {})
        self.capacity_mode = capacity_mode
        self.port_estimation = port_estimation
        #: memoized constraint skeletons keyed by design identity
        self._skeletons: Dict[int, _GlobalSkeleton] = {}
        self.skeleton_builds = 0
        self.skeleton_reuses = 0

    # -------------------------------------------------------------- building
    def build_model(
        self,
        design: Design,
        preprocessor: Optional[Preprocessor] = None,
        cost_model: Optional[CostModel] = None,
        forbidden_pairs: Iterable[Pair] = (),
    ) -> GlobalModelArtifacts:
        """Construct the ILP for ``design`` (without solving it).

        ``forbidden_pairs`` lists (structure, type) combinations that must
        not be used; the mapping pipeline adds entries here when a detailed
        mapping attempt fails and the global step must be repeated.  The
        numeric constraint skeleton (feasibility, port/capacity loads,
        objective coefficients) is memoized per design, so those re-runs
        only pay for model assembly.
        """
        skeleton = self._skeleton(design, preprocessor, cost_model)
        forbidden: Set[Pair] = set(forbidden_pairs)

        model = Model(name=f"global[{design.name}@{self.board.name}]")
        z_vars: Dict[Pair, Variable] = {}

        # Variables and uniqueness constraints (one SOS-1 group per segment).
        for ds, row in zip(design.data_structures, skeleton.candidates):
            row_vars: List[Variable] = []
            for bank_name, _, _ in row:
                if (ds.name, bank_name) in forbidden:
                    continue
                var = model.add_binary(f"Z[{ds.name}|{bank_name}]")
                z_vars[(ds.name, bank_name)] = var
                row_vars.append(var)
            if not row_vars:
                raise MappingError(
                    f"structure {ds.name!r} has no admissible bank type left "
                    "(all candidates are infeasible or forbidden)"
                )
            model.add_constraint(quicksum(row_vars) == 1, name=f"uniq[{ds.name}]")
            if len(row_vars) > 1:
                model.add_sos1(row_vars, name=f"sos[{ds.name}]")

        # Port constraints.
        for t_index, bank in enumerate(self.board.bank_types):
            terms = []
            for d_index, ds in enumerate(design.data_structures):
                var = z_vars.get((ds.name, bank.name))
                if var is None:
                    continue
                terms.append(int(skeleton.port_coeff[d_index, t_index]) * var)
            if terms:
                model.add_constraint(
                    quicksum(terms) <= bank.total_ports, name=f"ports[{bank.name}]"
                )

        # Capacity constraints.
        for t_index, bank in enumerate(self.board.bank_types):
            for group_name, members in skeleton.group_sets:
                terms = []
                for name in members:
                    var = z_vars.get((name, bank.name))
                    if var is None:
                        continue
                    d_index = design.index_of(name)
                    terms.append(int(skeleton.footprint[d_index, t_index]) * var)
                if terms:
                    suffix = "" if group_name == "all" else f":{group_name}"
                    model.add_constraint(
                        quicksum(terms) <= bank.total_capacity_bits,
                        name=f"capacity[{bank.name}{suffix}]",
                    )

        # Objective.
        objective_terms = []
        for (structure, type_name), var in z_vars.items():
            d_index = design.index_of(structure)
            t_index = self.board.type_index(type_name)
            objective_terms.append(float(skeleton.coefficients[d_index, t_index]) * var)
        model.set_objective(quicksum(objective_terms))

        return GlobalModelArtifacts(
            model, z_vars, skeleton.preprocessor, skeleton.cost_model
        )

    def _skeleton(
        self,
        design: Design,
        preprocessor: Optional[Preprocessor],
        cost_model: Optional[CostModel],
    ) -> _GlobalSkeleton:
        """Return (building on demand) the memoized skeleton for ``design``.

        Entries are keyed by object identity and verified with an ``is``
        check against the strong reference the entry holds, so a recycled
        ``id()`` can never alias a dead design.  A cached entry is only
        reused when the caller passed no explicit preprocessor/cost model
        or passed the exact objects the skeleton was built from.
        """
        key = id(design)
        entry = self._skeletons.get(key)
        if (
            entry is not None
            and entry.design is design
            and (preprocessor is None or entry.preprocessor is preprocessor)
            and (cost_model is None or entry.cost_model is cost_model)
        ):
            self.skeleton_reuses += 1
            return entry
        preprocessor = preprocessor or Preprocessor(
            design, self.board, port_estimation=self.port_estimation
        )
        cost_model = cost_model or CostModel(
            design, self.board, self.weights, preprocessor=preprocessor
        )
        entry = _GlobalSkeleton(design, preprocessor, cost_model, self.capacity_mode)
        if len(self._skeletons) >= 8:  # bound the cache for long sweeps
            self._skeletons.pop(next(iter(self._skeletons)))
        self._skeletons[key] = entry
        self.skeleton_builds += 1
        return entry

    def full_model_artifacts(
        self,
        design: Design,
        preprocessor: Optional[Preprocessor] = None,
        cost_model: Optional[CostModel] = None,
    ) -> GlobalModelArtifacts:
        """The unfiltered model of ``design``, built once and reused.

        This is what the solve path runs against: forbidden pairs never
        remove variables from it, they become solver-level fixings
        (``fix_zero``), so the pipeline's retries share one constraint
        skeleton *and* one ``Model`` — and, through the
        :class:`~repro.ilp.SolveContext`, one cached standard form.
        """
        skeleton = self._skeleton(design, preprocessor, cost_model)
        if skeleton.full_artifacts is None:
            skeleton.full_artifacts = self.build_model(
                design,
                preprocessor=skeleton.preprocessor,
                cost_model=skeleton.cost_model,
            )
        return skeleton.full_artifacts

    def _fixed_indices(
        self,
        artifacts: GlobalModelArtifacts,
        design: Design,
        forbidden: Set[Pair],
    ) -> List[int]:
        """Variable indices a forbidden set pins to zero (with sanity check)."""
        if not forbidden:
            return []
        free = {ds.name: 0 for ds in design.data_structures}
        fixed: List[int] = []
        for (structure, type_name), var in artifacts.z_vars.items():
            if (structure, type_name) in forbidden:
                fixed.append(var.index)
            else:
                free[structure] += 1
        starved = [name for name, count in free.items() if count == 0]
        if starved:
            raise MappingError(
                f"structure {starved[0]!r} has no admissible bank type left "
                "(all candidates are infeasible or forbidden)"
            )
        return sorted(fixed)

    def _repaired_warm_assignment(
        self,
        skeleton: _GlobalSkeleton,
        artifacts: GlobalModelArtifacts,
        design: Design,
        context: SolveContext,
        forbidden: Set[Pair],
    ) -> Optional[Dict[str, str]]:
        """Patch the previous incumbent around newly forbidden pairs.

        The retry loop forbids exactly the pair that made detailed mapping
        fail, so the previous solve's incumbent is one reassignment away
        from a (usually feasible) warm start: move the offending structure
        to its cheapest still-admissible type and keep everything else.
        """
        values = context.warm_values
        if values is None or values.shape[0] != artifacts.model.num_variables:
            return None
        assignment: Dict[str, str] = {}
        for (structure, type_name), var in artifacts.z_vars.items():
            if values[var.index] > 0.5:
                assignment[structure] = type_name
        if len(assignment) != design.num_segments:
            return None
        for structure, type_name in list(assignment.items()):
            if (structure, type_name) not in forbidden:
                continue
            d_index = design.index_of(structure)
            options = [
                (float(skeleton.coefficients[d_index, t_index]), bank_name)
                for bank_name, _, t_index in skeleton.candidates[d_index]
                if (structure, bank_name) not in forbidden
            ]
            if not options:
                return None
            assignment[structure] = min(options)[1]
        return assignment

    def _seeded_warm_assignment(
        self,
        skeleton: _GlobalSkeleton,
        artifacts: GlobalModelArtifacts,
        design: Design,
        context: SolveContext,
        forbidden: Set[Pair],
        base: Optional[Mapping[str, str]],
    ) -> Optional[Tuple[Dict[str, str], np.ndarray]]:
        """Warm assignment seeded from an *adjacent* design point's incumbent.

        The explore subsystem chains a :meth:`SolveContext.chain_dict`
        from one design point into the next; its ``seed_assignment`` is
        keyed by structure/type *name*, so it survives the model change.
        Per structure the seed's type is adopted when it is still an
        admissible candidate here, otherwise the ``base`` (greedy) choice,
        otherwise the cheapest candidate.  The merged assignment is only
        returned when its objective beats the base assignment — a worse
        seed must never displace a better greedy incumbent.  Returns the
        assignment together with its (validated) warm-start vector so the
        caller does not rebuild it.
        """
        seed = context.seed_assignment
        if not seed:
            return None
        merged: Dict[str, str] = {}
        for d_index, ds in enumerate(design.data_structures):
            choice: Optional[str] = None
            for source in (seed, base):
                candidate = source.get(ds.name) if source else None
                if (
                    candidate is not None
                    and (ds.name, candidate) in artifacts.z_vars
                    and (ds.name, candidate) not in forbidden
                ):
                    choice = candidate
                    break
            if choice is None:
                options = [
                    (float(skeleton.coefficients[d_index, t_index]), bank_name)
                    for bank_name, _, t_index in skeleton.candidates[d_index]
                    if (ds.name, bank_name) not in forbidden
                ]
                if not options:
                    return None
                choice = min(options)[1]
            merged[ds.name] = choice

        def cost(assignment: Mapping[str, str]) -> float:
            total = 0.0
            for name, type_name in assignment.items():
                d_index = design.index_of(name)
                t_index = self.board.type_index(type_name)
                total += float(skeleton.coefficients[d_index, t_index])
            return total

        if base is not None and len(base) == design.num_segments:
            if cost(merged) >= cost(base):
                return None
        # The transplant must hold up in *this* model: an infeasible merged
        # assignment would silently displace a feasible greedy incumbent
        # (the solver validates warm starts and drops bad ones).
        vector = artifacts.warm_start_vector(merged)
        if vector is None or not artifacts.model.is_feasible(vector):
            return None
        return merged, vector

    # ---------------------------------------------------------------- solving
    def solve(
        self,
        design: Design,
        warm_start: Optional[Mapping[str, str]] = None,
        forbidden_pairs: Iterable[Pair] = (),
        preprocessor: Optional[Preprocessor] = None,
        cost_model: Optional[CostModel] = None,
        context: Optional[SolveContext] = None,
    ) -> GlobalMapping:
        """Solve the global-mapping ILP and return the type assignment.

        ``context`` (optional) threads warm starts, pseudo-cost branching
        statistics and the cached standard form across repeated solves of
        the same design — the pipeline passes one context through its
        whole forbidden-pair retry loop.
        """
        forbidden: Set[Pair] = set(forbidden_pairs)
        solver_options = dict(self.solver_options)

        if isinstance(self.solver, str) or self.solver is None:
            skeleton = self._skeleton(design, preprocessor, cost_model)
            artifacts = self.full_model_artifacts(design, preprocessor, cost_model)
            fixed = self._fixed_indices(artifacts, design, forbidden)
            if fixed:
                solver_options["fix_zero"] = fixed
            warm_vector = None
            if context is not None:
                solver_options["context"] = context
                if warm_start is None and forbidden:
                    warm_start = self._repaired_warm_assignment(
                        skeleton, artifacts, design, context, forbidden
                    )
                seeded = self._seeded_warm_assignment(
                    skeleton, artifacts, design, context, forbidden, warm_start
                )
                if seeded is not None:
                    warm_start, warm_vector = seeded
            if warm_start is not None:
                if warm_vector is None:
                    warm_vector = artifacts.warm_start_vector(warm_start)
                if warm_vector is not None:
                    solver_options.setdefault("warm_start", warm_vector)
            solver: object = create_solver(self.solver, **solver_options)
        else:
            # Injected solver instances cannot take per-solve fixings, so
            # they keep the legacy path: a model with forbidden variables
            # filtered out at assembly.
            artifacts = self.build_model(
                design,
                preprocessor=preprocessor,
                cost_model=cost_model,
                forbidden_pairs=forbidden,
            )
            solver = self.solver

        start = time.perf_counter()
        solution = solver.solve(artifacts.model)
        elapsed = time.perf_counter() - start

        if context is not None and solution.is_success:
            # Record the incumbent here, on the caller's thread, so warm
            # retries work with every backend (scipy-milp and the racing
            # portfolio never touch the caller's context themselves).
            context.note_incumbent(solution.values)

        if not solution.is_success:
            raise MappingError(
                f"global mapping of design {design.name!r} failed: "
                f"solver status {solution.status!r}"
            )
        assignment = artifacts.assignment_from_solution(solution)
        if context is not None:
            # Name-keyed counterpart of note_incumbent: what a *chained*
            # solve of an adjacent design point can reuse as its seed.
            context.note_assignment(assignment)
        breakdown = artifacts.cost_model.evaluate_assignment(assignment)
        return GlobalMapping(
            design_name=design.name,
            board_name=self.board.name,
            assignment=assignment,
            objective=solution.objective,
            cost=breakdown,
            solver_status=solution.status,
            solve_time=elapsed,
            solver_stats=solution.stats.as_dict(),
        )
