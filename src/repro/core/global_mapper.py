"""Global memory mapping: the ILP of Section 4.1.

Global mapping assigns every data structure to exactly one bank *type*
using only the ``Z[d][t]`` 0/1 variables.  The pre-processing of
:mod:`repro.core.preprocess` turns the architecture's instance/port/
configuration details into per-pair port and capacity loads, so three
families of linear constraints suffice:

Uniqueness
    :math:`\\sum_t Z_{dt} = 1` for every data structure *d* (each row is
    also declared as an SOS-1 group, which the branch-and-bound solver
    branches on).

Ports
    :math:`\\sum_d Z_{dt} \\cdot CP_{dt} \\le P_t \\cdot I_t` for every type *t*.

Capacity
    :math:`\\sum_d Z_{dt} \\cdot CW_{dt} \\cdot CD_{dt} \\le I_t \\cdot W_t[1] \\cdot D_t[1]`
    for every type *t*.  When conflict information shows that some
    structures can never be live simultaneously, the constraint can be
    applied per conflict clique instead of over all structures
    (``capacity_mode="clique"``), allowing storage overlap as described at
    the end of Section 4.1.2.

The objective is the weighted latency / pin-delay / pin-I/O cost of
:class:`repro.core.objective.CostModel`.
"""

from __future__ import annotations

import math
import time
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

import numpy as np

from ..arch.board import Board
from ..design.design import Design
from ..ilp import (
    FEASIBLE,
    OPTIMAL,
    Model,
    Solution,
    SolveContext,
    SolveStats,
    Variable,
    certified_gap,
    create_solver,
    quicksum,
)
from .mapping import GlobalMapping, MappingError
from .objective import CostModel, CostWeights
from .preprocess import Preprocessor

__all__ = ["GlobalMapper", "GlobalModelArtifacts"]

Pair = Tuple[str, str]


class _GlobalSkeleton:
    """Pre-computed constraint skeleton of one design's global ILP.

    Building a global model costs two very different things: deriving the
    numeric tables (feasibility mask, port charges, footprints, objective
    coefficients, conflict cliques) and instantiating `Model` objects.  The
    tables depend only on (design, board, weights) — never on the forbidden
    pairs the pipeline's retry loop adds — so they are computed once per
    design and reused by every re-build; only the cheap `Model` assembly
    runs again, with forbidden pairs filtered out of the cached candidate
    lists.
    """

    def __init__(
        self,
        design: Design,
        preprocessor: Preprocessor,
        cost_model: CostModel,
        capacity_mode: str,
    ) -> None:
        self.design = design
        self.preprocessor = preprocessor
        self.cost_model = cost_model

        unmappable = preprocessor.unmappable_structures()
        if unmappable:
            raise MappingError(
                "the following data structures fit on no bank type of board "
                f"{preprocessor.board.name!r}: {unmappable}"
            )
        feasible = preprocessor.feasible_pairs()
        #: per-structure admissible (bank name, d_index, t_index) candidates
        self.candidates: List[List[Tuple[str, int, int]]] = []
        board = preprocessor.board
        for d_index, ds in enumerate(design.data_structures):
            row = [
                (bank.name, d_index, t_index)
                for t_index, bank in enumerate(board.bank_types)
                if feasible[d_index, t_index]
            ]
            self.candidates.append(row)
        self.port_coeff = preprocessor.cp
        self.footprint = preprocessor.consumed_bits_table()
        self.coefficients = cost_model.coefficient_matrix()
        if capacity_mode == "strict":
            self.group_sets = [("all", [ds.name for ds in design.data_structures])]
        else:
            cliques = design.conflicts.conflict_cliques(design.data_structures)
            self.group_sets = [(f"clique{i}", clique) for i, clique in enumerate(cliques)]
        #: the unfiltered (no forbidden pairs) model, built once per design;
        #: the solve path reuses it across the pipeline's retries and applies
        #: forbidden pairs as solver-level variable fixings instead of
        #: re-assembling the constraint skeleton.
        self.full_artifacts: Optional["GlobalModelArtifacts"] = None


class GlobalModelArtifacts:
    """The ILP model of a global-mapping instance plus its variable map.

    Exposed separately from :meth:`GlobalMapper.solve` so that tests,
    benchmarks and the solver-ablation study can inspect or re-solve the
    same model with different backends.
    """

    def __init__(
        self,
        model: Model,
        z_vars: Dict[Pair, Variable],
        preprocessor: Preprocessor,
        cost_model: CostModel,
    ) -> None:
        self.model = model
        self.z_vars = z_vars
        self.preprocessor = preprocessor
        self.cost_model = cost_model

    def assignment_from_solution(self, solution: Solution) -> Dict[str, str]:
        """Read the ``structure -> type`` assignment out of a solve result."""
        if not solution.is_success:
            raise MappingError(
                f"global mapping solve failed with status {solution.status!r}"
            )
        assignment: Dict[str, str] = {}
        for (structure, type_name), var in self.z_vars.items():
            if solution.rounded(var) == 1:
                if structure in assignment:
                    raise MappingError(
                        f"structure {structure!r} selected for two types "
                        f"({assignment[structure]!r} and {type_name!r})"
                    )
                assignment[structure] = type_name
        design = self.preprocessor.design
        missing = [ds.name for ds in design.data_structures if ds.name not in assignment]
        if missing:
            raise MappingError(f"structures left unassigned by the solver: {missing}")
        return assignment

    def warm_start_vector(self, assignment: Mapping[str, str]) -> Optional[np.ndarray]:
        """Translate an assignment into a warm-start vector for the solver."""
        values = np.zeros(self.model.num_variables)
        for (structure, type_name), var in self.z_vars.items():
            if assignment.get(structure) == type_name:
                values[var.index] = 1.0
        # Every structure must be covered, otherwise the vector is useless.
        covered = {s for (s, t) in self.z_vars if assignment.get(s) == t}
        if len(covered) != self.preprocessor.design.num_segments:
            return None
        return values


class GlobalMapper:
    """Builds and solves the global-mapping ILP for one board.

    Parameters
    ----------
    board:
        The target architecture.
    weights:
        Objective weights; defaults to normalised equal weighting.
    solver:
        Solver backend name (see :func:`repro.ilp.create_solver`) or a
        solver instance.
    solver_options:
        Keyword options forwarded to the solver factory (time limits etc.).
    capacity_mode:
        ``"strict"`` (default) charges every assigned structure its full
        footprint; ``"clique"`` applies the capacity constraint per
        conflict clique, allowing non-conflicting structures to overlap in
        storage (the relaxation mentioned at the end of Section 4.1.2).
    port_estimation:
        ``"paper"`` (default) uses the Figure 3 port estimate; ``"refined"``
        uses the tighter future-work charge for banks with more than two
        ports (see :class:`repro.core.Preprocessor`).
    mode:
        ``"exact"`` (default) proves optimality.  ``"fast"`` trades the
        proof for speed under an optimality-gap contract: a greedy
        assignment that certifies within ``gap_limit`` of a structural
        lower bound is returned without ever building the ILP; otherwise
        the exact solver runs with the same ``gap_limit`` so the tree
        search may stop at the first incumbent meeting the contract.
    gap_limit:
        Relative optimality-gap contract for ``mode="fast"`` (default
        0.05, i.e. within 5% of the lower bound).  Ignored in exact mode.
    """

    def __init__(
        self,
        board: Board,
        weights: Optional[CostWeights] = None,
        solver: object = "auto",
        solver_options: Optional[Dict[str, object]] = None,
        capacity_mode: str = "strict",
        port_estimation: str = "paper",
        mode: str = "exact",
        gap_limit: Optional[float] = None,
    ) -> None:
        if capacity_mode not in ("strict", "clique"):
            raise ValueError(f"unknown capacity_mode {capacity_mode!r}")
        if mode not in ("exact", "fast"):
            raise ValueError(f"unknown mode {mode!r} (expected 'exact' or 'fast')")
        if gap_limit is not None and gap_limit < 0:
            raise ValueError("gap_limit must be non-negative")
        self.board = board
        self.weights = weights or CostWeights()
        self.solver = solver
        self.solver_options = dict(solver_options or {})
        self.capacity_mode = capacity_mode
        self.port_estimation = port_estimation
        self.mode = mode
        self.gap_limit = (
            gap_limit if gap_limit is not None else (0.05 if mode == "fast" else None)
        )
        #: memoized constraint skeletons keyed by design identity
        self._skeletons: Dict[int, _GlobalSkeleton] = {}
        self.skeleton_builds = 0
        self.skeleton_reuses = 0

    # -------------------------------------------------------------- building
    def build_model(
        self,
        design: Design,
        preprocessor: Optional[Preprocessor] = None,
        cost_model: Optional[CostModel] = None,
        forbidden_pairs: Iterable[Pair] = (),
    ) -> GlobalModelArtifacts:
        """Construct the ILP for ``design`` (without solving it).

        ``forbidden_pairs`` lists (structure, type) combinations that must
        not be used; the mapping pipeline adds entries here when a detailed
        mapping attempt fails and the global step must be repeated.  The
        numeric constraint skeleton (feasibility, port/capacity loads,
        objective coefficients) is memoized per design, so those re-runs
        only pay for model assembly.
        """
        skeleton = self._skeleton(design, preprocessor, cost_model)
        forbidden: Set[Pair] = set(forbidden_pairs)

        model = Model(name=f"global[{design.name}@{self.board.name}]")
        z_vars: Dict[Pair, Variable] = {}

        # Variables and uniqueness constraints (one SOS-1 group per segment).
        for ds, row in zip(design.data_structures, skeleton.candidates):
            row_vars: List[Variable] = []
            for bank_name, _, _ in row:
                if (ds.name, bank_name) in forbidden:
                    continue
                var = model.add_binary(f"Z[{ds.name}|{bank_name}]")
                z_vars[(ds.name, bank_name)] = var
                row_vars.append(var)
            if not row_vars:
                raise MappingError(
                    f"structure {ds.name!r} has no admissible bank type left "
                    "(all candidates are infeasible or forbidden)"
                )
            model.add_constraint(quicksum(row_vars) == 1, name=f"uniq[{ds.name}]")
            if len(row_vars) > 1:
                model.add_sos1(row_vars, name=f"sos[{ds.name}]")

        # Port constraints.
        for t_index, bank in enumerate(self.board.bank_types):
            terms = []
            for d_index, ds in enumerate(design.data_structures):
                var = z_vars.get((ds.name, bank.name))
                if var is None:
                    continue
                terms.append(int(skeleton.port_coeff[d_index, t_index]) * var)
            if terms:
                model.add_constraint(
                    quicksum(terms) <= bank.total_ports, name=f"ports[{bank.name}]"
                )

        # Capacity constraints.
        for t_index, bank in enumerate(self.board.bank_types):
            for group_name, members in skeleton.group_sets:
                terms = []
                for name in members:
                    var = z_vars.get((name, bank.name))
                    if var is None:
                        continue
                    d_index = design.index_of(name)
                    terms.append(int(skeleton.footprint[d_index, t_index]) * var)
                if terms:
                    suffix = "" if group_name == "all" else f":{group_name}"
                    model.add_constraint(
                        quicksum(terms) <= bank.total_capacity_bits,
                        name=f"capacity[{bank.name}{suffix}]",
                    )

        # Objective.
        objective_terms = []
        for (structure, type_name), var in z_vars.items():
            d_index = design.index_of(structure)
            t_index = self.board.type_index(type_name)
            objective_terms.append(float(skeleton.coefficients[d_index, t_index]) * var)
        model.set_objective(quicksum(objective_terms))

        return GlobalModelArtifacts(
            model, z_vars, skeleton.preprocessor, skeleton.cost_model
        )

    def _skeleton(
        self,
        design: Design,
        preprocessor: Optional[Preprocessor],
        cost_model: Optional[CostModel],
    ) -> _GlobalSkeleton:
        """Return (building on demand) the memoized skeleton for ``design``.

        Entries are keyed by object identity and verified with an ``is``
        check against the strong reference the entry holds, so a recycled
        ``id()`` can never alias a dead design.  A cached entry is only
        reused when the caller passed no explicit preprocessor/cost model
        or passed the exact objects the skeleton was built from.
        """
        key = id(design)
        entry = self._skeletons.get(key)
        if (
            entry is not None
            and entry.design is design
            and (preprocessor is None or entry.preprocessor is preprocessor)
            and (cost_model is None or entry.cost_model is cost_model)
        ):
            self.skeleton_reuses += 1
            return entry
        preprocessor = preprocessor or Preprocessor(
            design, self.board, port_estimation=self.port_estimation
        )
        cost_model = cost_model or CostModel(
            design, self.board, self.weights, preprocessor=preprocessor
        )
        entry = _GlobalSkeleton(design, preprocessor, cost_model, self.capacity_mode)
        if len(self._skeletons) >= 8:  # bound the cache for long sweeps
            self._skeletons.pop(next(iter(self._skeletons)))
        self._skeletons[key] = entry
        self.skeleton_builds += 1
        return entry

    def full_model_artifacts(
        self,
        design: Design,
        preprocessor: Optional[Preprocessor] = None,
        cost_model: Optional[CostModel] = None,
    ) -> GlobalModelArtifacts:
        """The unfiltered model of ``design``, built once and reused.

        This is what the solve path runs against: forbidden pairs never
        remove variables from it, they become solver-level fixings
        (``fix_zero``), so the pipeline's retries share one constraint
        skeleton *and* one ``Model`` — and, through the
        :class:`~repro.ilp.SolveContext`, one cached standard form.
        """
        skeleton = self._skeleton(design, preprocessor, cost_model)
        if skeleton.full_artifacts is None:
            skeleton.full_artifacts = self.build_model(
                design,
                preprocessor=skeleton.preprocessor,
                cost_model=skeleton.cost_model,
            )
        return skeleton.full_artifacts

    def _fixed_indices(
        self,
        artifacts: GlobalModelArtifacts,
        design: Design,
        forbidden: Set[Pair],
    ) -> List[int]:
        """Variable indices a forbidden set pins to zero (with sanity check)."""
        if not forbidden:
            return []
        free = {ds.name: 0 for ds in design.data_structures}
        fixed: List[int] = []
        for (structure, type_name), var in artifacts.z_vars.items():
            if (structure, type_name) in forbidden:
                fixed.append(var.index)
            else:
                free[structure] += 1
        starved = [name for name, count in free.items() if count == 0]
        if starved:
            raise MappingError(
                f"structure {starved[0]!r} has no admissible bank type left "
                "(all candidates are infeasible or forbidden)"
            )
        return sorted(fixed)

    def _repaired_warm_assignment(
        self,
        skeleton: _GlobalSkeleton,
        artifacts: GlobalModelArtifacts,
        design: Design,
        context: SolveContext,
        forbidden: Set[Pair],
    ) -> Optional[Dict[str, str]]:
        """Patch the previous incumbent around newly forbidden pairs.

        The retry loop forbids exactly the pair that made detailed mapping
        fail, so the previous solve's incumbent is one reassignment away
        from a (usually feasible) warm start: move the offending structure
        to its cheapest still-admissible type and keep everything else.
        """
        values = context.warm_values
        if values is None or values.shape[0] != artifacts.model.num_variables:
            return None
        assignment: Dict[str, str] = {}
        for (structure, type_name), var in artifacts.z_vars.items():
            if values[var.index] > 0.5:
                assignment[structure] = type_name
        if len(assignment) != design.num_segments:
            return None
        for structure, type_name in list(assignment.items()):
            if (structure, type_name) not in forbidden:
                continue
            d_index = design.index_of(structure)
            options = [
                (float(skeleton.coefficients[d_index, t_index]), bank_name)
                for bank_name, _, t_index in skeleton.candidates[d_index]
                if (structure, bank_name) not in forbidden
            ]
            if not options:
                return None
            assignment[structure] = min(options)[1]
        return assignment

    def _seeded_warm_assignment(
        self,
        skeleton: _GlobalSkeleton,
        artifacts: GlobalModelArtifacts,
        design: Design,
        context: SolveContext,
        forbidden: Set[Pair],
        base: Optional[Mapping[str, str]],
    ) -> Optional[Tuple[Dict[str, str], np.ndarray]]:
        """Warm assignment seeded from an *adjacent* design point's incumbent.

        The explore subsystem chains a :meth:`SolveContext.chain_dict`
        from one design point into the next; its ``seed_assignment`` is
        keyed by structure/type *name*, so it survives the model change.
        Per structure the seed's type is adopted when it is still an
        admissible candidate here, otherwise the ``base`` (greedy) choice,
        otherwise the cheapest candidate.  The merged assignment is only
        returned when its objective beats the base assignment — a worse
        seed must never displace a better greedy incumbent.  Returns the
        assignment together with its (validated) warm-start vector so the
        caller does not rebuild it.
        """
        seed = context.seed_assignment
        if not seed:
            return None
        merged: Dict[str, str] = {}
        for d_index, ds in enumerate(design.data_structures):
            choice: Optional[str] = None
            for source in (seed, base):
                candidate = source.get(ds.name) if source else None
                if (
                    candidate is not None
                    and (ds.name, candidate) in artifacts.z_vars
                    and (ds.name, candidate) not in forbidden
                ):
                    choice = candidate
                    break
            if choice is None:
                options = [
                    (float(skeleton.coefficients[d_index, t_index]), bank_name)
                    for bank_name, _, t_index in skeleton.candidates[d_index]
                    if (ds.name, bank_name) not in forbidden
                ]
                if not options:
                    return None
                choice = min(options)[1]
            merged[ds.name] = choice

        def cost(assignment: Mapping[str, str]) -> float:
            total = 0.0
            for name, type_name in assignment.items():
                d_index = design.index_of(name)
                t_index = self.board.type_index(type_name)
                total += float(skeleton.coefficients[d_index, t_index])
            return total

        if base is not None and len(base) == design.num_segments:
            if cost(merged) >= cost(base):
                return None
        # The transplant must hold up in *this* model: an infeasible merged
        # assignment would silently displace a feasible greedy incumbent
        # (the solver validates warm starts and drops bad ones).
        vector = artifacts.warm_start_vector(merged)
        if vector is None or not artifacts.model.is_feasible(vector):
            return None
        return merged, vector

    # -------------------------------------------------------------- fast lane
    _FAST_BIG = 1e18
    #: subgradient-ascent budget of the fast lane's Lagrangian bound.
    _FAST_DUAL_ITERS = 300
    #: how often (in dual iterations) the guided construction re-runs.
    _FAST_PRIMAL_EVERY = 25

    def _fast_tables(
        self,
        design: Design,
        skeleton: _GlobalSkeleton,
        forbidden: Set[Pair],
    ) -> Tuple[np.ndarray, ...]:
        """Numpy views of the fast lane's data: costs, feasibility, loads."""
        coefficients = np.asarray(skeleton.coefficients, dtype=float)
        num_types = len(self.board.bank_types)
        feasible = np.zeros((design.num_segments, num_types), dtype=bool)
        for d_index, row in enumerate(skeleton.candidates):
            ds = design.data_structures[d_index]
            for bank_name, _, t_index in row:
                if (ds.name, bank_name) not in forbidden:
                    feasible[d_index, t_index] = True
            if not feasible[d_index].any():
                raise MappingError(
                    f"structure {ds.name!r} has no admissible bank type left "
                    "(all candidates are infeasible or forbidden)"
                )
        ports = np.asarray(skeleton.port_coeff, dtype=float)
        bits = np.asarray(skeleton.footprint, dtype=float)
        port_budget = np.array(
            [bank.total_ports for bank in self.board.bank_types], dtype=float
        )
        bit_budget = np.array(
            [bank.total_capacity_bits for bank in self.board.bank_types], dtype=float
        )
        return coefficients, feasible, ports, bits, port_budget, bit_budget

    @staticmethod
    def _fast_construct(
        order: np.ndarray,
        score: np.ndarray,
        cost: np.ndarray,
        feasible: np.ndarray,
        ports: np.ndarray,
        bits: np.ndarray,
        port_budget: np.ndarray,
        bit_budget: np.ndarray,
    ) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Largest-first greedy by ``score``, then descent on ``cost``.

        The descent repeatedly moves one structure to the cheapest type
        with budget left until no single move improves; every visited
        state satisfies the strict port/capacity budgets, so the result
        is feasible in both capacity modes (strict budgets are a subset
        of the clique relaxation).
        """
        big = GlobalMapper._FAST_BIG
        ports_left = port_budget.copy()
        bits_left = bit_budget.copy()
        assign = np.full(order.shape[0], -1, dtype=int)
        for d in order:
            open_types = (
                feasible[d] & (ports[d] <= ports_left) & (bits[d] <= bits_left)
            )
            if not open_types.any():
                return None
            choice = int(np.where(open_types, score[d], big).argmin())
            assign[d] = choice
            ports_left[choice] -= ports[d, choice]
            bits_left[choice] -= bits[d, choice]
        improved = True
        while improved:
            improved = False
            for d in range(assign.shape[0]):
                current = int(assign[d])
                trial_ports = ports_left.copy()
                trial_bits = bits_left.copy()
                trial_ports[current] += ports[d, current]
                trial_bits[current] += bits[d, current]
                open_types = (
                    feasible[d]
                    & (ports[d] <= trial_ports)
                    & (bits[d] <= trial_bits)
                )
                candidate = np.where(open_types, cost[d], big)
                target = int(candidate.argmin())
                if candidate[target] < cost[d, current] - 1e-12:
                    ports_left = trial_ports
                    bits_left = trial_bits
                    ports_left[target] -= ports[d, target]
                    bits_left[target] -= bits[d, target]
                    assign[d] = target
                    improved = True
        return assign, ports_left, bits_left

    def _fast_mapping(
        self,
        design: Design,
        skeleton: _GlobalSkeleton,
        forbidden: Set[Pair],
    ) -> Optional[GlobalMapping]:
        """Model-free fast lane: Lagrangian bound + guided greedy descent.

        Dualising the port and capacity rows leaves one independent
        ``min`` per structure (the uniqueness rows), so each dual value
        is a valid lower bound and subgradient ascent with Polyak steps
        tightens it toward the LP bound without ever building the ILP.
        The primal side runs the largest-first greedy twice — once on
        raw costs, periodically on the dual's reduced costs, which price
        in resource scarcity — each followed by a single-move descent.
        As soon as the incumbent certifies within ``gap_limit`` of the
        best bound the mapping is returned; if the contract is still
        unmet after the iteration budget, ``None`` sends the caller to
        the exact solver (which inherits the same ``gap_limit``).
        """
        start = time.perf_counter()
        tables = self._fast_tables(design, skeleton, forbidden)
        cost, feasible, ports, bits, port_budget, bit_budget = tables
        num_structs, num_types = cost.shape
        big = self._FAST_BIG
        order = np.argsort(
            -np.array([ds.size_bits for ds in design.data_structures])
        )
        idx = np.arange(num_structs)

        best_assign: Optional[np.ndarray] = None
        best_obj = math.inf
        incumbents = 0

        def adopt(result) -> None:
            nonlocal best_assign, best_obj, incumbents
            if result is None:
                return
            assign = result[0]
            obj = float(cost[idx, assign].sum())
            if obj < best_obj - 1e-12:
                best_assign = assign
                best_obj = obj
                incumbents += 1

        adopt(
            self._fast_construct(
                order, cost, cost, feasible, ports, bits, port_budget, bit_budget
            )
        )

        # Lagrangian dual on budget-normalised rows (sum_d a_dt z_dt <= 1):
        # normalising keeps the port (units) and capacity (megabit)
        # subgradients on one scale, which Polyak steps need to converge.
        masked = np.where(feasible, cost, big)
        port_load = ports / np.maximum(port_budget, 1e-12)[None, :]
        bit_load = bits / np.maximum(bit_budget, 1e-12)[None, :]
        lam = np.zeros(num_types)
        mu = np.zeros(num_types)
        best_bound = float(masked.min(axis=1).sum())  # lam = mu = 0
        best_lam = lam.copy()
        best_mu = mu.copy()
        theta = 1.0
        stall = 0
        dual_iters = 0

        def certified(obj: float, bound: float) -> bool:
            return (
                self.gap_limit is not None
                and math.isfinite(obj)
                and certified_gap(obj, bound) <= self.gap_limit
            )

        if not certified(best_obj, best_bound):
            for iteration in range(self._FAST_DUAL_ITERS):
                dual_iters = iteration + 1
                reduced = (
                    masked + lam[None, :] * port_load + mu[None, :] * bit_load
                )
                chosen = reduced.argmin(axis=1)
                value = float(
                    reduced[idx, chosen].sum() - lam.sum() - mu.sum()
                )
                if value > best_bound + 1e-12:
                    best_bound = value
                    best_lam = lam.copy()
                    best_mu = mu.copy()
                    stall = 0
                else:
                    stall += 1
                    if stall >= 20:
                        theta *= 0.5
                        stall = 0
                if certified(best_obj, best_bound):
                    break
                over_ports = (
                    np.bincount(
                        chosen,
                        weights=port_load[idx, chosen],
                        minlength=num_types,
                    )
                    - 1.0
                )
                over_bits = (
                    np.bincount(
                        chosen,
                        weights=bit_load[idx, chosen],
                        minlength=num_types,
                    )
                    - 1.0
                )
                norm2 = float(over_ports @ over_ports + over_bits @ over_bits)
                if norm2 < 1e-18:
                    break  # dual optimum: the relaxed choice fits all budgets
                target = best_obj if math.isfinite(best_obj) else best_bound + 1.0
                step = theta * max(target - value, 1e-12) / norm2
                lam = np.maximum(0.0, lam + step * over_ports)
                mu = np.maximum(0.0, mu + step * over_bits)
                if (iteration + 1) % self._FAST_PRIMAL_EVERY == 0 or theta < 1e-4:
                    guided = (
                        masked
                        + best_lam[None, :] * port_load
                        + best_mu[None, :] * bit_load
                    )
                    adopt(
                        self._fast_construct(
                            order, guided, cost, feasible, ports, bits,
                            port_budget, bit_budget,
                        )
                    )
                    if certified(best_obj, best_bound) or theta < 1e-4:
                        break

        if best_assign is not None and not certified(best_obj, best_bound):
            # One last guided pass at the best multipliers found.
            guided = (
                masked + best_lam[None, :] * port_load + best_mu[None, :] * bit_load
            )
            adopt(
                self._fast_construct(
                    order, guided, cost, feasible, ports, bits,
                    port_budget, bit_budget,
                )
            )

        if best_assign is None or not certified(best_obj, best_bound):
            return None  # contract unmet structurally; exact solver decides

        assignment = {
            design.data_structures[d].name: self.board.bank_types[int(t)].name
            for d, t in enumerate(best_assign)
        }
        gap = certified_gap(best_obj, best_bound)
        elapsed = time.perf_counter() - start
        stats = SolveStats(
            wall_time=elapsed,
            incumbent_updates=incumbents,
            heuristic_incumbents=incumbents,
            best_bound=best_bound,
            gap=gap,
            backend="fast-heuristic",
        ).as_dict()
        stats["mode"] = "fast"
        stats["extra"]["dual_iterations"] = dual_iters
        breakdown = skeleton.cost_model.evaluate_assignment(assignment)
        return GlobalMapping(
            design_name=design.name,
            board_name=self.board.name,
            assignment=assignment,
            objective=breakdown.weighted_total,
            cost=breakdown,
            solver_status=FEASIBLE,
            solve_time=elapsed,
            solver_stats=stats,
        )

    # ---------------------------------------------------------------- solving
    def solve(
        self,
        design: Design,
        warm_start: Optional[Mapping[str, str]] = None,
        forbidden_pairs: Iterable[Pair] = (),
        preprocessor: Optional[Preprocessor] = None,
        cost_model: Optional[CostModel] = None,
        context: Optional[SolveContext] = None,
    ) -> GlobalMapping:
        """Solve the global-mapping ILP and return the type assignment.

        ``context`` (optional) threads warm starts, pseudo-cost branching
        statistics and the cached standard form across repeated solves of
        the same design — the pipeline passes one context through its
        whole forbidden-pair retry loop.
        """
        forbidden: Set[Pair] = set(forbidden_pairs)
        solver_options = dict(self.solver_options)

        if self.mode == "fast":
            skeleton = self._skeleton(design, preprocessor, cost_model)
            fast = self._fast_mapping(design, skeleton, forbidden)
            if fast is not None:
                if context is not None:
                    context.note_assignment(dict(fast.assignment))
                return fast
            # Contract not met structurally: run the exact tree, but let
            # it stop at the first incumbent certifying within the gap.
            solver_options.setdefault("gap_limit", self.gap_limit)

        if isinstance(self.solver, str) or self.solver is None:
            skeleton = self._skeleton(design, preprocessor, cost_model)
            artifacts = self.full_model_artifacts(design, preprocessor, cost_model)
            fixed = self._fixed_indices(artifacts, design, forbidden)
            if fixed:
                solver_options["fix_zero"] = fixed
            warm_vector = None
            if context is not None:
                solver_options["context"] = context
                if warm_start is None and forbidden:
                    warm_start = self._repaired_warm_assignment(
                        skeleton, artifacts, design, context, forbidden
                    )
                seeded = self._seeded_warm_assignment(
                    skeleton, artifacts, design, context, forbidden, warm_start
                )
                if seeded is not None:
                    warm_start, warm_vector = seeded
            if warm_start is not None:
                if warm_vector is None:
                    warm_vector = artifacts.warm_start_vector(warm_start)
                if warm_vector is not None:
                    solver_options.setdefault("warm_start", warm_vector)
            solver: object = create_solver(self.solver, **solver_options)
        else:
            # Injected solver instances cannot take per-solve fixings, so
            # they keep the legacy path: a model with forbidden variables
            # filtered out at assembly.
            artifacts = self.build_model(
                design,
                preprocessor=preprocessor,
                cost_model=cost_model,
                forbidden_pairs=forbidden,
            )
            solver = self.solver

        start = time.perf_counter()
        solution = solver.solve(artifacts.model)
        elapsed = time.perf_counter() - start

        if context is not None and solution.is_success:
            # Record the incumbent here, on the caller's thread, so warm
            # retries work with every backend (scipy-milp and the racing
            # portfolio never touch the caller's context themselves).
            context.note_incumbent(solution.values)

        if not solution.is_success:
            raise MappingError(
                f"global mapping of design {design.name!r} failed: "
                f"solver status {solution.status!r}"
            )
        assignment = artifacts.assignment_from_solution(solution)
        if context is not None:
            # Name-keyed counterpart of note_incumbent: what a *chained*
            # solve of an adjacent design point can reuse as its seed.
            context.note_assignment(assignment)
        breakdown = artifacts.cost_model.evaluate_assignment(assignment)
        solver_stats = solution.stats.as_dict()
        if self.mode == "fast":
            solver_stats["mode"] = "fast"
            gap = solver_stats.get("gap")
            if solution.status == OPTIMAL and not (
                isinstance(gap, float) and math.isfinite(gap)
            ):
                # The exact fallback proved optimality, so the certified
                # gap is zero even for backends that never report one.
                solver_stats["gap"] = 0.0
        return GlobalMapping(
            design_name=design.name,
            board_name=self.board.name,
            assignment=assignment,
            objective=solution.objective,
            cost=breakdown,
            solver_status=solution.status,
            solve_time=elapsed,
            solver_stats=solver_stats,
        )
