"""Legality checking of global and detailed mappings.

The paper's central claim about the two-stage decomposition is that the
global stage's pre-processed port and capacity constraints *guarantee* a
successful detailed mapping, and that detailed mapping cannot change the
mapping cost.  The validators in this module check the artefacts produced
by both stages so that the property can be asserted in tests (including
hypothesis-based randomized tests) rather than assumed:

* :func:`validate_global_mapping` — every structure assigned exactly once,
  only to types it fits on, with the per-type port and capacity budgets
  respected.
* :func:`validate_detailed_mapping` — every structure fully stored, on the
  bank type chosen by global mapping, with no port used twice, no instance
  over capacity, no overlapping regions, and base addresses aligned to the
  fragment's configuration (the "no address adders" property).

Validators return a list of human-readable violation strings;
:func:`ensure_valid` raises :class:`repro.core.mapping.MappingError` when
the list is non-empty.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from ..arch.board import Board
from ..design.design import Design
from .mapping import DetailedMapping, GlobalMapping, MappingError, PlacedFragment
from .preprocess import Preprocessor

__all__ = [
    "validate_global_mapping",
    "validate_detailed_mapping",
    "ensure_valid",
]


def validate_global_mapping(
    design: Design,
    board: Board,
    mapping: GlobalMapping,
    preprocessor: Optional[Preprocessor] = None,
) -> List[str]:
    """Check a global (type-level) assignment against the paper's constraints."""
    violations: List[str] = []
    preprocessor = preprocessor or Preprocessor(design, board)

    names = set(design.segment_names)
    assigned = set(mapping.assignment)
    for missing in sorted(names - assigned):
        violations.append(f"structure {missing!r} has no type assignment")
    for extra in sorted(assigned - names):
        violations.append(f"assignment references unknown structure {extra!r}")

    type_names = set(board.type_names)
    for structure, type_name in mapping.assignment.items():
        if type_name not in type_names:
            violations.append(
                f"structure {structure!r} assigned to unknown type {type_name!r}"
            )

    # Per-type port and capacity budgets.
    port_load: Dict[str, int] = defaultdict(int)
    bits_load: Dict[str, int] = defaultdict(int)
    for structure, type_name in mapping.assignment.items():
        if structure not in names or type_name not in type_names:
            continue
        d_index = design.index_of(structure)
        t_index = board.type_index(type_name)
        port_load[type_name] += int(preprocessor.cp[d_index, t_index])
        bits_load[type_name] += int(
            preprocessor.cw[d_index, t_index] * preprocessor.cd[d_index, t_index]
        )
    for bank in board.bank_types:
        if port_load[bank.name] > bank.total_ports:
            violations.append(
                f"type {bank.name!r} port budget exceeded: "
                f"{port_load[bank.name]} > {bank.total_ports}"
            )
        if bits_load[bank.name] > bank.total_capacity_bits:
            violations.append(
                f"type {bank.name!r} capacity exceeded: "
                f"{bits_load[bank.name]} > {bank.total_capacity_bits} bits"
            )
    return violations


def _regions_overlap(a: PlacedFragment, b: PlacedFragment) -> bool:
    """Whether two placed fragments overlap physically on the same instance."""
    a_start = a.base_word * a.fragment.config.width
    a_end = a_start + a.fragment.allocated_bits
    b_start = b.base_word * b.fragment.config.width
    b_end = b_start + b.fragment.allocated_bits
    return not (a_end <= b_start or b_end <= a_start)


def validate_detailed_mapping(
    design: Design,
    board: Board,
    global_mapping: GlobalMapping,
    detailed: DetailedMapping,
) -> List[str]:
    """Check a physical placement for coverage, capacity, ports and alignment."""
    violations: List[str] = []
    type_names = set(board.type_names)

    # ---------------------------------------------------------- per fragment
    for placement in detailed.placements:
        fragment = placement.fragment
        if placement.bank_type not in type_names:
            violations.append(
                f"fragment of {fragment.structure!r} placed on unknown type "
                f"{placement.bank_type!r}"
            )
            continue
        bank = board.type_by_name(placement.bank_type)
        expected_type = global_mapping.assignment.get(fragment.structure)
        if expected_type is not None and expected_type != placement.bank_type:
            violations.append(
                f"fragment of {fragment.structure!r} placed on {placement.bank_type!r} "
                f"but global mapping chose {expected_type!r}"
            )
        if placement.instance >= bank.num_instances:
            violations.append(
                f"fragment of {fragment.structure!r} uses instance "
                f"{placement.instance} of {placement.bank_type!r} which has only "
                f"{bank.num_instances} instances"
            )
        if fragment.config not in bank.configurations:
            violations.append(
                f"fragment of {fragment.structure!r} uses configuration "
                f"{fragment.config} not offered by {placement.bank_type!r}"
            )
        for port in placement.ports:
            if port < 0 or port >= bank.num_ports:
                violations.append(
                    f"fragment of {fragment.structure!r} uses port {port} of "
                    f"{placement.bank_type!r} which has {bank.num_ports} ports"
                )
        end_bits = (placement.base_word + fragment.allocated_words) * fragment.config.width
        if end_bits > bank.capacity_bits:
            violations.append(
                f"fragment of {fragment.structure!r} spills past the end of "
                f"{placement.bank_type!r}#{placement.instance} "
                f"({end_bits} > {bank.capacity_bits} bits)"
            )
        if fragment.width_bits > fragment.config.width:
            violations.append(
                f"fragment of {fragment.structure!r} stores {fragment.width_bits}-bit "
                f"words in a {fragment.config.width}-bit wide configuration"
            )
        # Power-of-two alignment of the base address.
        if fragment.allocated_words and placement.base_word % fragment.allocated_words != 0:
            violations.append(
                f"fragment of {fragment.structure!r} at base word "
                f"{placement.base_word} is not aligned to its allocated size "
                f"{fragment.allocated_words}"
            )

    # ----------------------------------------------------------- per instance
    by_instance: Dict[Tuple[str, int], List[PlacedFragment]] = defaultdict(list)
    for placement in detailed.placements:
        by_instance[(placement.bank_type, placement.instance)].append(placement)

    for (type_name, instance), placements in by_instance.items():
        if type_name not in type_names:
            continue
        bank = board.type_by_name(type_name)
        used_ports: Dict[int, str] = {}
        total_bits = 0
        for placement in placements:
            total_bits += placement.fragment.allocated_bits
            for port in placement.ports:
                if port in used_ports:
                    violations.append(
                        f"port {port} of {type_name!r}#{instance} assigned to both "
                        f"{used_ports[port]!r} and {placement.structure!r}"
                    )
                else:
                    used_ports[port] = placement.structure
        if total_bits > bank.capacity_bits:
            violations.append(
                f"instance {type_name!r}#{instance} over capacity: "
                f"{total_bits} > {bank.capacity_bits} bits"
            )
        if len(used_ports) > bank.num_ports:
            violations.append(
                f"instance {type_name!r}#{instance} uses {len(used_ports)} ports "
                f"but the type has {bank.num_ports}"
            )
        for i, a in enumerate(placements):
            for b in placements[i + 1 :]:
                if _regions_overlap(a, b):
                    violations.append(
                        f"fragments of {a.structure!r} and {b.structure!r} overlap on "
                        f"{type_name!r}#{instance}"
                    )

    # ---------------------------------------------------------- per structure
    stored: Dict[str, int] = defaultdict(int)
    for placement in detailed.placements:
        stored[placement.structure] += placement.fragment.stored_bits
    for ds in design.data_structures:
        if stored[ds.name] != ds.size_bits:
            violations.append(
                f"structure {ds.name!r} stores {stored[ds.name]} bits "
                f"but requires {ds.size_bits}"
            )
    return violations


def ensure_valid(violations: Sequence[str], context: str = "mapping") -> None:
    """Raise :class:`MappingError` when ``violations`` is non-empty."""
    if violations:
        summary = "\n  - ".join(violations)
        raise MappingError(f"{context} is invalid:\n  - {summary}")
