"""Result containers: global assignments, fragments, placements, mappings.

The two stages of the paper produce different artefacts:

* **Global mapping** produces an assignment of every data structure to one
  bank *type* (:class:`GlobalMapping`), together with the objective value
  and solver statistics.
* **Detailed mapping** refines this into a physical placement: every data
  structure becomes one or more :class:`Fragment` objects, each bound to a
  concrete bank instance, a port of that instance, a depth/width
  configuration and a word/bit region (:class:`PlacedFragment`).  The full
  result is a :class:`DetailedMapping`, and :class:`MappingResult` bundles
  both stages plus the cost breakdown for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..arch.bank import MemoryConfig
from ..arch.board import Board
from ..design.design import Design
from .objective import CostBreakdown

__all__ = [
    "MappingError",
    "GlobalMapping",
    "Fragment",
    "PlacedFragment",
    "DetailedMapping",
    "MappingResult",
]


class MappingError(RuntimeError):
    """Raised when a mapping stage cannot produce a legal result."""


@dataclass(frozen=True)
class GlobalMapping:
    """Assignment of every data structure to exactly one bank type."""

    design_name: str
    board_name: str
    #: ``data structure name -> bank type name``
    assignment: Mapping[str, str]
    objective: float
    cost: Optional[CostBreakdown] = None
    solver_status: str = "optimal"
    solve_time: float = 0.0
    solver_stats: Dict[str, object] = field(default_factory=dict)

    def type_of(self, structure: str) -> str:
        try:
            return self.assignment[structure]
        except KeyError:
            raise MappingError(f"no assignment recorded for structure {structure!r}")

    def structures_on(self, bank_type: str) -> List[str]:
        """Names of structures assigned to ``bank_type`` (stable order)."""
        return [name for name, t in self.assignment.items() if t == bank_type]

    def grouped_by_type(self) -> Dict[str, List[str]]:
        groups: Dict[str, List[str]] = {}
        for name, type_name in self.assignment.items():
            groups.setdefault(type_name, []).append(name)
        return groups

    @property
    def num_structures(self) -> int:
        return len(self.assignment)

    def describe(self) -> str:
        lines = [
            f"Global mapping of {self.design_name!r} onto {self.board_name!r} "
            f"(objective {self.objective:.4f}, status {self.solver_status})"
        ]
        for type_name, members in sorted(self.grouped_by_type().items()):
            lines.append(f"  {type_name}: {', '.join(sorted(members))}")
        return "\n".join(lines)


@dataclass(frozen=True)
class Fragment:
    """A piece of a data structure destined for a single bank instance.

    Produced by the detailed mapper's decomposition (the FP/WP/DP/WDP grid
    of Figure 2) *before* instances are chosen.  ``words`` is the real word
    count of the piece, ``allocated_words`` the power-of-two rounded count
    that the piece occupies, and ``port_demand`` the number of ports the
    Figure 3 estimator charges for it.
    """

    structure: str
    region: str                 # "full", "width", "depth", "corner"
    row: int                    # row index in the Figure 2 grid
    col: int                    # column index in the Figure 2 grid
    config: MemoryConfig
    words: int
    allocated_words: int
    width_bits: int
    port_demand: int
    #: word offset of this fragment within the structure (first word covered)
    word_offset: int
    #: bit offset of this fragment within a word of the structure
    bit_offset: int

    def __post_init__(self) -> None:
        if self.words <= 0:
            raise MappingError(f"fragment of {self.structure!r} has no words")
        if self.allocated_words < self.words:
            raise MappingError(
                f"fragment of {self.structure!r} allocates fewer words than it holds"
            )
        if self.port_demand <= 0:
            raise MappingError(f"fragment of {self.structure!r} demands no ports")

    @property
    def allocated_bits(self) -> int:
        """Bits of the instance the fragment occupies (rounded footprint)."""
        return self.allocated_words * self.config.width

    @property
    def stored_bits(self) -> int:
        """Bits of actual payload data held by the fragment."""
        return self.words * self.width_bits


@dataclass(frozen=True)
class PlacedFragment:
    """A fragment bound to a concrete instance, ports and address range."""

    fragment: Fragment
    bank_type: str
    instance: int
    ports: Tuple[int, ...]
    base_word: int

    def __post_init__(self) -> None:
        if self.instance < 0:
            raise MappingError("instance index must be non-negative")
        if len(self.ports) != self.fragment.port_demand:
            raise MappingError(
                f"fragment of {self.fragment.structure!r} was given "
                f"{len(self.ports)} ports but demands {self.fragment.port_demand}"
            )
        if self.base_word < 0:
            raise MappingError("base word must be non-negative")

    @property
    def structure(self) -> str:
        return self.fragment.structure

    @property
    def end_word(self) -> int:
        """One past the last word (in the fragment's configuration) occupied."""
        return self.base_word + self.fragment.allocated_words

    def describe(self) -> str:
        ports = ",".join(str(p) for p in self.ports)
        return (
            f"{self.structure}[{self.fragment.region} r{self.fragment.row} "
            f"c{self.fragment.col}] -> {self.bank_type}#{self.instance} "
            f"ports[{ports}] cfg {self.fragment.config} words "
            f"{self.base_word}..{self.end_word - 1}"
        )


@dataclass(frozen=True)
class DetailedMapping:
    """Physical placement of every data structure of a design."""

    design_name: str
    board_name: str
    placements: Tuple[PlacedFragment, ...]

    def fragments_of(self, structure: str) -> List[PlacedFragment]:
        return [p for p in self.placements if p.structure == structure]

    def on_instance(self, bank_type: str, instance: int) -> List[PlacedFragment]:
        return [
            p
            for p in self.placements
            if p.bank_type == bank_type and p.instance == instance
        ]

    def instances_used(self, bank_type: Optional[str] = None) -> int:
        """Number of distinct instances carrying at least one fragment."""
        keys = {
            (p.bank_type, p.instance)
            for p in self.placements
            if bank_type is None or p.bank_type == bank_type
        }
        return len(keys)

    @property
    def num_fragments(self) -> int:
        return len(self.placements)

    def fragmentation(self) -> Dict[str, int]:
        """Fragments per data structure (the detailed mapper minimises this)."""
        counts: Dict[str, int] = {}
        for placement in self.placements:
            counts[placement.structure] = counts.get(placement.structure, 0) + 1
        return counts

    def describe(self) -> str:
        lines = [
            f"Detailed mapping of {self.design_name!r} onto {self.board_name!r}: "
            f"{self.num_fragments} fragments on {self.instances_used()} instances"
        ]
        for placement in self.placements:
            lines.append("  " + placement.describe())
        return "\n".join(lines)


@dataclass(frozen=True)
class MappingResult:
    """Bundle of both mapping stages for one design/board pair."""

    design: Design
    board: Board
    global_mapping: GlobalMapping
    detailed_mapping: DetailedMapping
    cost: CostBreakdown
    global_time: float = 0.0
    detailed_time: float = 0.0
    retries: int = 0
    #: aggregated solver statistics of the whole retry loop (LP solves,
    #: nodes, presolve reductions, warm-start hits); see
    #: :meth:`repro.core.pipeline.MemoryMapper._solve_stats`.
    solve_stats: Dict[str, object] = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        return self.global_time + self.detailed_time

    def describe(self) -> str:
        lines = [
            f"Mapping of {self.design.name!r} onto {self.board.name!r}",
            f"  objective (weighted): {self.cost.weighted_total:.4f}",
            f"  latency cost: {self.cost.latency:.1f}",
            f"  pin-delay cost: {self.cost.pin_delay:.1f}",
            f"  pin-I/O cost: {self.cost.pin_io:.1f}",
            f"  global solve: {self.global_time:.3f}s, detailed: {self.detailed_time:.3f}s"
            + (f", retries: {self.retries}" if self.retries else ""),
        ]
        if self.solve_stats:
            lines.append(
                "  solver: {lp} LP solves / {nodes} nodes over {solves} global "
                "solve(s), presolve dropped {rows} rows and fixed {cols} cols".format(
                    lp=self.solve_stats.get("lp_solves", 0),
                    nodes=self.solve_stats.get("nodes_explored", 0),
                    solves=self.solve_stats.get("global_solves", 0),
                    rows=self.solve_stats.get("presolve_rows_dropped", 0),
                    cols=self.solve_stats.get("presolve_cols_fixed", 0),
                )
            )
        lines.append(self.global_mapping.describe())
        return "\n".join(lines)
