"""Port/space allocation options of a multi-ported bank (Table 2).

A bank instance with :math:`P_t` ports can be shared by up to :math:`P_t`
data-structure fractions, each occupying a power-of-two number of words.
Table 2 of the paper enumerates, for a 3-port 16-word bank, every *general*
way the instance's space can be split across the ports — non-increasing
tuples of power-of-two word counts (or zero) whose sum does not exceed the
depth — and notes that the ``consumed_ports`` estimate of Figure 3 rejects
some of them (e.g. ``(8, 8, 0)``: each 8-word fraction is charged two of
the three ports, so the estimate needs four ports).  The over-estimation
never occurs for single- or dual-ported banks.

This module reproduces both views: the general enumeration
(:func:`space_allocation_options`) and the subset the estimator accepts
(:func:`accepted_allocation_options`), plus the grouped presentation used
to render Table 2.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .preprocess import consumed_ports, next_power_of_two

__all__ = [
    "powers_of_two_up_to",
    "space_allocation_options",
    "estimated_ports_for_split",
    "is_split_accepted",
    "accepted_allocation_options",
    "table2_rows",
    "packable_with_ports",
]


def powers_of_two_up_to(limit: int) -> List[int]:
    """All powers of two between 1 and ``limit`` inclusive, ascending."""
    if limit < 1:
        return []
    powers = []
    value = 1
    while value <= limit:
        powers.append(value)
        value *= 2
    return powers


def space_allocation_options(depth: int, num_ports: int) -> List[Tuple[int, ...]]:
    """Enumerate the general space splits of Table 2.

    Returns every non-increasing ``num_ports``-tuple whose entries are
    powers of two (or zero) and whose sum does not exceed ``depth``, sorted
    in the descending order Table 2 uses.  ``(0, 0, ..., 0)`` (an unused
    instance) is included, exactly as in the paper's table.
    """
    if depth <= 0:
        raise ValueError("depth must be positive")
    if num_ports <= 0:
        raise ValueError("num_ports must be positive")
    candidates = [0] + powers_of_two_up_to(depth)

    results: List[Tuple[int, ...]] = []

    def extend(prefix: Tuple[int, ...], remaining: int, max_value: int) -> None:
        if len(prefix) == num_ports:
            results.append(prefix)
            return
        for value in candidates:
            if value > max_value or value > remaining:
                continue
            extend(prefix + (value,), remaining - value, value)

    extend(tuple(), depth, depth)
    # Sort descending lexicographically so the listing matches Table 2
    # (16,0,0 first, ..., 0,0,0 last).
    results.sort(reverse=True)
    return results


def estimated_ports_for_split(split: Sequence[int], depth: int, num_ports: int) -> int:
    """Total ports charged by Figure 3's estimator for a given word split."""
    return sum(consumed_ports(words, depth, num_ports) for words in split if words > 0)


def is_split_accepted(split: Sequence[int], depth: int, num_ports: int) -> bool:
    """Whether the estimator of Figure 3 accepts this split.

    A split is accepted when the estimated ports of all its fractions fit
    within the instance's ``num_ports``.  For dual-ported banks every
    general split is accepted; for three or more ports some splits (such as
    ``(8, 8, 0)`` on a 16-word 3-port bank) are rejected even though they
    physically fit — the conservatism the paper flags as future work.
    """
    return estimated_ports_for_split(split, depth, num_ports) <= num_ports


def accepted_allocation_options(depth: int, num_ports: int) -> List[Tuple[int, ...]]:
    """The subset of :func:`space_allocation_options` the estimator accepts."""
    return [
        split
        for split in space_allocation_options(depth, num_ports)
        if is_split_accepted(split, depth, num_ports)
    ]


def packable_with_ports(split: Sequence[int], depth: int, num_ports: int) -> bool:
    """Whether a word split physically fits a ``depth``-word ``num_ports`` bank.

    The *physical* requirement (as opposed to the Figure 3 estimate) is only
    that each non-zero fraction gets one port and that the power-of-two
    rounded fractions fit in the instance's words.  This is the ground truth
    the ``refined`` port-estimation mode of the pre-processor (the paper's
    future-work item for banks with more than two ports) is validated
    against.
    """
    rounded = [next_power_of_two(words) for words in split if words > 0]
    return len(rounded) <= num_ports and sum(rounded) <= depth


def table2_rows(depth: int = 16, num_ports: int = 3) -> List[Dict[str, object]]:
    """Rows of Table 2 in its grouped presentation.

    The paper lists one row per distinct (port-1, port-2) prefix and groups
    the feasible port-3 word counts into a single cell; each returned row
    carries the prefix, the grouped last-port options, and whether the
    Figure 3 estimator accepts *any* completion of the prefix.
    """
    options = space_allocation_options(depth, num_ports)
    grouped: Dict[Tuple[int, ...], List[int]] = {}
    for split in options:
        prefix, last = split[:-1], split[-1]
        grouped.setdefault(prefix, []).append(last)
    rows: List[Dict[str, object]] = []
    for prefix in sorted(grouped, reverse=True):
        lasts = sorted(grouped[prefix], reverse=True)
        accepted = [
            last for last in lasts if is_split_accepted(prefix + (last,), depth, num_ports)
        ]
        rows.append(
            {
                "prefix": prefix,
                "last_port_options": lasts,
                "accepted_last_port_options": accepted,
                "estimated_ports_prefix": estimated_ports_for_split(
                    prefix, depth, num_ports
                ),
            }
        )
    return rows
