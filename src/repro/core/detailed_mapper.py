"""Detailed memory mapping: the per-type post-pass of Section 4.2.

Once global mapping has decided which bank *type* every data structure
lives on, detailed mapping legalises the assignment one type at a time:

1. every structure assigned to the type is decomposed into the FP/WP/DP/WDP
   fragment grid of Figure 2 (full-width/full-depth blocks, the leftover
   width column, the leftover depth row and the corner), using the α/β
   configurations chosen by the pre-processing,
2. fragments that occupy a whole instance (all ports / all words) receive
   dedicated instances, and
3. the remaining partial fragments are packed onto instances with a
   first-fit-decreasing policy on their Figure 3 port demand; inside an
   instance fragments are laid out in decreasing size order at
   power-of-two aligned base addresses, so no base-address adders are
   needed (the property the paper's rounding rule is designed to ensure).

Because all instances of a type are identical, none of these decisions can
change the global objective; the detailed mapper's own (secondary)
optimisation goal is to minimise fragmentation and the number of instances
touched.  If the packing of some type fails — possible only for types with
more than two ports, where the paper's port estimator is conservative —
:class:`DetailedMappingFailure` reports the offending type and structures
so that the pipeline can re-run global mapping with that combination
forbidden (the retry loop the paper describes in Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..arch.bank import BankType
from ..arch.board import Board
from ..design.design import Design
from .mapping import (
    DetailedMapping,
    Fragment,
    GlobalMapping,
    MappingError,
    PlacedFragment,
)
from .preprocess import (
    PairMetrics,
    Preprocessor,
    consumed_ports,
    next_power_of_two,
)

__all__ = ["DetailedMapper", "DetailedMappingFailure", "decompose_structure"]


class DetailedMappingFailure(MappingError):
    """Raised when the fragments of one bank type cannot be packed.

    Carries enough context for the pipeline to forbid the failing
    (structure, type) pairs and retry global mapping.
    """

    def __init__(self, bank_type: str, structures: Sequence[str], reason: str) -> None:
        super().__init__(
            f"detailed mapping failed for bank type {bank_type!r}: {reason} "
            f"(structures: {', '.join(sorted(structures))})"
        )
        self.bank_type = bank_type
        self.structures = tuple(structures)
        self.reason = reason


def decompose_structure(
    metrics: PairMetrics,
    bank: BankType,
    port_estimation: str = "paper",
) -> List[Fragment]:
    """Decompose one structure into the Figure 2 fragment grid for ``bank``.

    ``port_estimation`` mirrors the :class:`Preprocessor` parameter: with
    ``"paper"`` each fragment's port demand follows Figure 3's estimate;
    with ``"refined"`` a partial fragment demands a single port (a whole-
    instance fragment still takes every port), matching the refined CP
    charge so that packing stays consistent with the global constraints.
    """
    alpha = metrics.alpha
    beta = metrics.beta
    pt = bank.num_ports
    refined = port_estimation == "refined"
    capacity = bank.capacity_bits

    def demand(words: int, config_depth: int, config_width: int) -> int:
        if refined:
            filled = next_power_of_two(words) * config_width >= capacity
            return pt if filled else 1
        return consumed_ports(words, config_depth, pt)

    fragments: List[Fragment] = []

    # Full blocks (FP): whole instances in configuration alpha.
    for row in range(metrics.full_rows):
        for col in range(metrics.full_cols):
            fragments.append(
                Fragment(
                    structure=metrics.structure,
                    region="full",
                    row=row,
                    col=col,
                    config=alpha,
                    words=alpha.depth,
                    allocated_words=alpha.depth,
                    width_bits=alpha.width,
                    port_demand=pt,
                    word_offset=row * alpha.depth,
                    bit_offset=col * alpha.width,
                )
            )

    # Leftover-width column (WP): full depth, narrow words, configuration beta.
    if metrics.leftover_width > 0:
        assert beta is not None
        wp_demand = demand(alpha.depth, beta.depth, beta.width)
        for row in range(metrics.full_rows):
            fragments.append(
                Fragment(
                    structure=metrics.structure,
                    region="width",
                    row=row,
                    col=metrics.full_cols,
                    config=beta,
                    words=alpha.depth,
                    allocated_words=next_power_of_two(alpha.depth),
                    width_bits=metrics.leftover_width,
                    port_demand=wp_demand,
                    word_offset=row * alpha.depth,
                    bit_offset=metrics.full_cols * alpha.width,
                )
            )

    # Leftover-depth row (DP): short blocks in configuration alpha.
    if metrics.leftover_words > 0:
        dp_demand = demand(metrics.leftover_words, alpha.depth, alpha.width)
        for col in range(metrics.full_cols):
            fragments.append(
                Fragment(
                    structure=metrics.structure,
                    region="depth",
                    row=metrics.full_rows,
                    col=col,
                    config=alpha,
                    words=metrics.leftover_words,
                    allocated_words=next_power_of_two(metrics.leftover_words),
                    width_bits=alpha.width,
                    port_demand=dp_demand,
                    word_offset=metrics.full_rows * alpha.depth,
                    bit_offset=col * alpha.width,
                )
            )

    # Corner (WDP): leftover depth and leftover width, configuration beta.
    if metrics.leftover_width > 0 and metrics.leftover_words > 0:
        assert beta is not None
        wdp_demand = demand(metrics.leftover_words, beta.depth, beta.width)
        fragments.append(
            Fragment(
                structure=metrics.structure,
                region="corner",
                row=metrics.full_rows,
                col=metrics.full_cols,
                config=beta,
                words=metrics.leftover_words,
                allocated_words=next_power_of_two(metrics.leftover_words),
                width_bits=metrics.leftover_width,
                port_demand=wdp_demand,
                word_offset=metrics.full_rows * alpha.depth,
                bit_offset=metrics.full_cols * alpha.width,
            )
        )

    return fragments


@dataclass
class _InstanceState:
    """Mutable packing state of one physical bank instance."""

    index: int
    free_ports: List[int]
    used_bits: int

    def aligned_offset(self, fragment: Fragment) -> int:
        """Start bit of ``fragment``, aligned to its configuration's width.

        Because fragments are packed in decreasing (power-of-two) size order
        the offset is already aligned in practice; the explicit rounding
        keeps the invariant even for hand-built fragment lists.
        """
        width = fragment.config.width
        return ((self.used_bits + width - 1) // width) * width

    def can_host(self, fragment: Fragment, capacity_bits: int) -> bool:
        return (
            len(self.free_ports) >= fragment.port_demand
            and self.aligned_offset(fragment) + fragment.allocated_bits <= capacity_bits
        )


class DetailedMapper:
    """Per-type fragment packing producing a physical placement."""

    def __init__(self, board: Board) -> None:
        self.board = board

    # ------------------------------------------------------------------ api
    def map(
        self,
        design: Design,
        global_mapping: GlobalMapping,
        preprocessor: Optional[Preprocessor] = None,
    ) -> DetailedMapping:
        """Produce a :class:`DetailedMapping` for a global assignment."""
        preprocessor = preprocessor or Preprocessor(design, self.board)
        placements: List[PlacedFragment] = []
        for bank in self.board.bank_types:
            members = global_mapping.structures_on(bank.name)
            if not members:
                continue
            placements.extend(
                self._map_bank_type(bank, members, preprocessor)
            )
        return DetailedMapping(
            design_name=design.name,
            board_name=self.board.name,
            placements=tuple(placements),
        )

    # ------------------------------------------------------------- internals
    def _map_bank_type(
        self,
        bank: BankType,
        structures: Sequence[str],
        preprocessor: Preprocessor,
    ) -> List[PlacedFragment]:
        """Pack all fragments destined for one bank type onto its instances."""
        fragments: List[Fragment] = []
        for name in structures:
            metrics = preprocessor.metrics(name, bank.name)
            fragments.extend(
                decompose_structure(
                    metrics, bank, port_estimation=preprocessor.port_estimation
                )
            )

        capacity = bank.capacity_bits
        num_ports = bank.num_ports

        # Whole-instance fragments first (they admit no sharing), then the
        # partial fragments in decreasing port-demand / size order, which is
        # both the classic first-fit-decreasing packing order and the
        # "decreasing fraction sizes" port-assignment rule of the paper.
        full = [f for f in fragments if f.port_demand >= num_ports]
        partial = [f for f in fragments if f.port_demand < num_ports]
        # Decreasing size order: since all allocated sizes are powers of two,
        # every later fragment's width divides the space already used, which
        # keeps base addresses power-of-two aligned (the paper's "no base
        # address adders" property).  Port demand is monotone in size, so
        # this is simultaneously decreasing-port-demand first-fit.
        partial.sort(key=lambda f: (f.allocated_bits, f.port_demand), reverse=True)

        placements: List[PlacedFragment] = []
        instances: List[_InstanceState] = []
        next_instance = 0

        def open_instance() -> Optional[_InstanceState]:
            nonlocal next_instance
            if next_instance >= bank.num_instances:
                return None
            state = _InstanceState(
                index=next_instance,
                free_ports=list(range(num_ports)),
                used_bits=0,
            )
            next_instance += 1
            instances.append(state)
            return state

        def place(fragment: Fragment, state: _InstanceState) -> None:
            ports = tuple(state.free_ports[: fragment.port_demand])
            del state.free_ports[: fragment.port_demand]
            start_bit = state.aligned_offset(fragment)
            base_word = start_bit // fragment.config.width
            state.used_bits = start_bit + fragment.allocated_bits
            placements.append(
                PlacedFragment(
                    fragment=fragment,
                    bank_type=bank.name,
                    instance=state.index,
                    ports=ports,
                    base_word=base_word,
                )
            )

        for fragment in full:
            state = open_instance()
            if state is None:
                raise DetailedMappingFailure(
                    bank.name,
                    structures,
                    f"ran out of instances while placing whole-instance fragments "
                    f"({bank.num_instances} available)",
                )
            place(fragment, state)

        for fragment in partial:
            target = None
            for state in instances:
                if state.can_host(fragment, capacity):
                    target = state
                    break
            if target is None:
                target = open_instance()
            if target is None or not target.can_host(fragment, capacity):
                raise DetailedMappingFailure(
                    bank.name,
                    structures,
                    "first-fit-decreasing packing could not place a fragment of "
                    f"{fragment.structure!r} (port demand {fragment.port_demand}, "
                    f"{fragment.allocated_bits} bits)",
                )
            place(fragment, target)

        return placements
