"""Core library: the paper's global/detailed memory-mapping contribution.

Public surface:

* :class:`MemoryMapper` — the two-stage pipeline (global ILP, then detailed
  placement) most applications should use.
* :class:`GlobalMapper` / :class:`DetailedMapper` — the two stages
  individually, for users who want to inspect or customise one of them.
* :class:`CompleteMapper` — the single-step flat ILP baseline of the
  paper's earlier work, used for the Table 3 / Figure 4 comparison.
* :class:`GreedyMapper` / :class:`SimulatedAnnealingMapper` — heuristic
  baselines and warm-start providers.
* :class:`Preprocessor` and the Figure 2 / Figure 3 / Table 2 arithmetic
  (:func:`consumed_ports`, :func:`compute_pair_metrics`,
  :func:`space_allocation_options`, ...).
* :class:`CostModel` / :class:`CostWeights` — the Section 4.1.3 objective.
* Result containers (:class:`GlobalMapping`, :class:`DetailedMapping`,
  :class:`MappingResult`) and validators.
"""

from .allocation import (
    accepted_allocation_options,
    estimated_ports_for_split,
    is_split_accepted,
    packable_with_ports,
    powers_of_two_up_to,
    space_allocation_options,
    table2_rows,
)
from .complete_mapper import CompleteMapper, CompleteMappingOutcome, CompleteModelArtifacts
from .detailed_mapper import DetailedMapper, DetailedMappingFailure, decompose_structure
from .global_mapper import GlobalMapper, GlobalModelArtifacts
from .heuristic_mapper import GreedyMapper, SimulatedAnnealingMapper
from .mapping import (
    DetailedMapping,
    Fragment,
    GlobalMapping,
    MappingError,
    MappingResult,
    PlacedFragment,
)
from .multipu import MultiPuCostModel, MultiPuMapper, MultiPuSystem, ProcessingUnit
from .report import render_assignment, render_full_report, render_memory_map
from .objective import CostBreakdown, CostModel, CostWeights
from .pipeline import MemoryMapper
from .preprocess import (
    PairMetrics,
    Preprocessor,
    compute_pair_metrics,
    consumed_ports,
    next_power_of_two,
    refined_consumed_ports,
    select_alpha,
    select_beta,
)
from .validate import ensure_valid, validate_detailed_mapping, validate_global_mapping

__all__ = [
    # pipeline + mappers
    "MemoryMapper",
    "GlobalMapper",
    "GlobalModelArtifacts",
    "DetailedMapper",
    "DetailedMappingFailure",
    "CompleteMapper",
    "CompleteMappingOutcome",
    "CompleteModelArtifacts",
    "GreedyMapper",
    "SimulatedAnnealingMapper",
    # pre-processing / allocation
    "Preprocessor",
    "PairMetrics",
    "compute_pair_metrics",
    "consumed_ports",
    "refined_consumed_ports",
    "next_power_of_two",
    "select_alpha",
    "select_beta",
    "decompose_structure",
    "space_allocation_options",
    "packable_with_ports",
    "accepted_allocation_options",
    "estimated_ports_for_split",
    "is_split_accepted",
    "powers_of_two_up_to",
    "table2_rows",
    # objective
    "CostModel",
    "CostWeights",
    "CostBreakdown",
    # results + validation
    "GlobalMapping",
    "DetailedMapping",
    "MappingResult",
    "Fragment",
    "PlacedFragment",
    "MappingError",
    "validate_global_mapping",
    "validate_detailed_mapping",
    "ensure_valid",
    # extensions
    "ProcessingUnit",
    "MultiPuSystem",
    "MultiPuCostModel",
    "MultiPuMapper",
    "render_assignment",
    "render_memory_map",
    "render_full_report",
]
