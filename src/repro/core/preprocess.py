"""ILP pre-processing of Section 4.1.1: consumed ports and ceiling sizes.

Before building the global-mapping ILP, the paper computes three parameters
for every (data structure *d*, bank type *t*) pair:

``CP[d][t]``
    the total number of ports of type *t* consumed if *d* is assigned to it,
``CW[d][t]``
    the "ceiling" width *d* would occupy on type *t*, and
``CD[d][t]``
    the "ceiling" depth *d* would occupy on type *t*.

The port count decomposes into the four components of Figure 2 — fully
used instances (FP), the partially used right column (WP), the partially
used bottom row (DP) and the bottom-right corner instance (WDP) — computed
with the fractional-port-consumption function ``consumed_ports`` of
Figure 3.  Two configurations of the bank type participate:

* α — the configuration with the smallest width not smaller than the
  structure's width :math:`W_d` (or the widest configuration when
  :math:`W_d` exceeds every width), and
* β — the configuration with the smallest width not smaller than the
  *left-over* width :math:`W_d \\bmod W_{tα}`.

All fractions of an instance are rounded up to a power-of-two number of
words so that no extra base-address logic is required, and the port
assignment inside an instance follows decreasing fraction sizes (see
:mod:`repro.core.detailed_mapper`).

The worked example of the paper — a 55x17 structure on a 3-port bank with
configurations 128x1 / 64x2 / 32x4 / 16x8 — decomposes into FP=18, WP=3,
DP=4, WDP=1 (26 consumed ports), CW=17 and CD=56; the unit tests pin these
numbers down.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..arch.bank import BankType, MemoryConfig
from ..arch.board import Board
from ..design.datastruct import DataStructure
from ..design.design import Design

__all__ = [
    "next_power_of_two",
    "consumed_ports",
    "refined_consumed_ports",
    "select_alpha",
    "select_beta",
    "PairMetrics",
    "compute_pair_metrics",
    "Preprocessor",
]


def next_power_of_two(value: int) -> int:
    """Smallest power of two that is >= ``value`` (0 maps to 0).

    Figure 3 rounds every fraction placed in an instance to a power-of-two
    depth so that fractions sharing an instance never need base-address
    adders; rounding *up* is the safe direction (the fraction must still
    hold all its words).
    """
    if value < 0:
        raise ValueError(f"cannot round a negative word count ({value})")
    if value == 0:
        return 0
    return 1 << (value - 1).bit_length()


def consumed_ports(words: int, bank_depth: int, num_ports: int) -> int:
    """Fractional port consumption of Figure 3.

    ``words`` is the number of words of the data structure placed in the
    instance, ``bank_depth`` the depth of the configuration the instance's
    port uses, and ``num_ports`` the port count :math:`P_t` of the type.
    The words are rounded up to a power of two, converted to a fraction of
    the instance, and the fraction is charged ``ceil(fraction * P_t)``
    ports.

    The function is exact for single- and dual-ported banks and
    conservative (may overestimate) for banks with more than two ports, as
    the paper notes for the (8, 8, 0) split of a 3-port bank.
    """
    if bank_depth <= 0:
        raise ValueError("bank_depth must be positive")
    if num_ports <= 0:
        raise ValueError("num_ports must be positive")
    if words <= 0:
        return 0
    depth = next_power_of_two(words)
    fraction = depth / bank_depth
    return int(math.ceil(fraction * num_ports))


def select_alpha(bank: BankType, width: int) -> MemoryConfig:
    """Configuration α: smallest width >= ``width``, else the widest one."""
    candidates = [c for c in bank.configs_by_width() if c.width >= width]
    if candidates:
        return candidates[0]
    return bank.widest_config()


def select_beta(bank: BankType, leftover_width: int) -> Optional[MemoryConfig]:
    """Configuration β for the leftover width (``None`` when no leftover)."""
    if leftover_width <= 0:
        return None
    return select_alpha(bank, leftover_width)


@dataclass(frozen=True)
class PairMetrics:
    """All pre-processed quantities for one (data structure, bank type) pair."""

    structure: str
    bank_type: str
    #: configurations chosen for the full-width columns and the leftover column
    alpha: MemoryConfig
    beta: Optional[MemoryConfig]
    #: the four port-consumption components of Figure 2
    fp: int
    wp: int
    dp: int
    wdp: int
    #: ceiling width and depth (CW, CD)
    ceiling_width: int
    ceiling_depth: int
    #: grid decomposition used by the detailed mapper
    full_rows: int          # floor(Dd / Dt_alpha)
    full_cols: int          # floor(Wd / Wt_alpha)
    leftover_words: int     # Dd mod Dt_alpha
    leftover_width: int     # Wd mod Wt_alpha

    @property
    def consumed_ports(self) -> int:
        """CP[d][t] — total ports consumed (sum of the four components)."""
        return self.fp + self.wp + self.dp + self.wdp

    @property
    def consumed_bits(self) -> int:
        """Footprint used by the capacity constraint (CW * CD)."""
        return self.ceiling_width * self.ceiling_depth

    @property
    def instances_touched(self) -> int:
        """Number of bank instances the structure's fragments touch."""
        count = self.full_rows * self.full_cols
        if self.leftover_width > 0:
            count += self.full_rows
        if self.leftover_words > 0:
            count += self.full_cols
        if self.leftover_width > 0 and self.leftover_words > 0:
            count += 1
        return count


def compute_pair_metrics(ds: DataStructure, bank: BankType) -> PairMetrics:
    """Compute CP/CW/CD and the Figure 2 decomposition for one pair."""
    alpha = select_alpha(bank, ds.width)
    # When the structure is narrower than alpha's width the "full" column
    # count is zero and the whole width is the leftover column handled by
    # configuration beta (which then coincides with alpha); the paper's
    # formulas cover this case without special treatment.
    full_cols = ds.width // alpha.width
    leftover_width = ds.width % alpha.width

    beta = select_beta(bank, leftover_width)

    full_rows = ds.depth // alpha.depth
    leftover_words = ds.depth % alpha.depth

    pt = bank.num_ports
    fp = full_rows * full_cols * pt
    wp = 0
    if leftover_width > 0:
        assert beta is not None
        wp = full_rows * consumed_ports(alpha.depth, beta.depth, pt)
    dp = 0
    if leftover_words > 0:
        dp = full_cols * consumed_ports(leftover_words, alpha.depth, pt)
    wdp = 0
    if leftover_width > 0 and leftover_words > 0:
        assert beta is not None
        wdp = consumed_ports(leftover_words, beta.depth, pt)

    ceiling_width = full_cols * alpha.width
    if leftover_width > 0:
        assert beta is not None
        ceiling_width += beta.width
    ceiling_depth = full_rows * alpha.depth
    if leftover_words > 0:
        ceiling_depth += next_power_of_two(leftover_words)

    return PairMetrics(
        structure=ds.name,
        bank_type=bank.name,
        alpha=alpha,
        beta=beta,
        fp=fp,
        wp=wp,
        dp=dp,
        wdp=wdp,
        ceiling_width=ceiling_width,
        ceiling_depth=ceiling_depth,
        full_rows=full_rows,
        full_cols=full_cols,
        leftover_words=leftover_words,
        leftover_width=leftover_width,
    )


def refined_consumed_ports(metrics: PairMetrics, bank: BankType) -> int:
    """Refined (future-work) port charge for banks with more than two ports.

    Figure 3's estimate charges every fraction ``ceil(fraction * P_t)``
    ports, which is what lets the *global* port constraint double as an
    intra-instance space constraint — but, as the paper notes, it wastes
    ports on banks with more than two ports (e.g. the (8, 8, 0) split of a
    3-port 16-word bank).  The refined charge implemented here counts what
    a fraction physically blocks: a fragment that fills a whole instance
    blocks all of its ports, every other fragment blocks exactly one.
    Space is then policed only by the capacity constraint and the detailed
    mapper's packing (with the pipeline's retry loop as the safety net), so
    the refinement is offered as an opt-in ``port_estimation="refined"``
    mode of the :class:`Preprocessor`.
    """
    pt = bank.num_ports
    capacity = bank.capacity_bits

    def charge(allocated_words: int, config_width: int) -> int:
        return pt if allocated_words * config_width >= capacity else 1

    total = metrics.full_rows * metrics.full_cols * pt
    if metrics.leftover_width > 0:
        assert metrics.beta is not None
        per_fragment = charge(next_power_of_two(metrics.alpha.depth), metrics.beta.width)
        total += metrics.full_rows * per_fragment
    if metrics.leftover_words > 0:
        per_fragment = charge(next_power_of_two(metrics.leftover_words), metrics.alpha.width)
        total += metrics.full_cols * per_fragment
    if metrics.leftover_width > 0 and metrics.leftover_words > 0:
        assert metrics.beta is not None
        total += charge(next_power_of_two(metrics.leftover_words), metrics.beta.width)
    return total


#: Accepted values of the Preprocessor's ``port_estimation`` parameter.
PORT_ESTIMATION_MODES = ("paper", "refined")


class Preprocessor:
    """Pre-computes the CP/CW/CD tables for a (design, board) pair.

    The tables are exposed both as per-pair :class:`PairMetrics` objects
    (used by the detailed mapper to reconstruct the fragment layout) and as
    dense NumPy arrays indexed ``[segment, type]`` (used to assemble the ILP
    constraint rows without Python-level loops over pairs).

    ``port_estimation`` selects how the CP table charges ports: ``"paper"``
    (default) uses the Figure 3 estimate, which guarantees that detailed
    mapping succeeds on single- and dual-ported banks; ``"refined"`` uses
    :func:`refined_consumed_ports`, the paper's future-work direction for
    banks with more than two ports (tighter, but detailed mapping may need
    the pipeline's retry loop).
    """

    def __init__(self, design: Design, board: Board,
                 port_estimation: str = "paper") -> None:
        if port_estimation not in PORT_ESTIMATION_MODES:
            raise ValueError(
                f"unknown port_estimation {port_estimation!r}; "
                f"expected one of {PORT_ESTIMATION_MODES}"
            )
        self.design = design
        self.board = board
        self.port_estimation = port_estimation
        num_segments = design.num_segments
        num_types = board.num_types

        self._metrics: Dict[Tuple[str, str], PairMetrics] = {}
        self.cp = np.zeros((num_segments, num_types), dtype=np.int64)
        self.cw = np.zeros((num_segments, num_types), dtype=np.int64)
        self.cd = np.zeros((num_segments, num_types), dtype=np.int64)

        for d_index, ds in enumerate(design.data_structures):
            for t_index, bank in enumerate(board.bank_types):
                metrics = compute_pair_metrics(ds, bank)
                self._metrics[(ds.name, bank.name)] = metrics
                if port_estimation == "refined":
                    self.cp[d_index, t_index] = refined_consumed_ports(metrics, bank)
                else:
                    self.cp[d_index, t_index] = metrics.consumed_ports
                self.cw[d_index, t_index] = metrics.ceiling_width
                self.cd[d_index, t_index] = metrics.ceiling_depth

        # Per-type totals used by the port and capacity constraints.
        self.type_total_ports = np.array(
            [bank.total_ports for bank in board.bank_types], dtype=np.int64
        )
        self.type_total_bits = np.array(
            [bank.total_capacity_bits for bank in board.bank_types], dtype=np.int64
        )

    # ------------------------------------------------------------- accessors
    def metrics(self, structure: str, bank_type: str) -> PairMetrics:
        """The :class:`PairMetrics` of a (structure, bank type) pair."""
        try:
            return self._metrics[(structure, bank_type)]
        except KeyError:
            raise KeyError(
                f"no metrics for structure {structure!r} on bank type {bank_type!r}"
            )

    def consumed_ports_table(self) -> np.ndarray:
        """CP[d][t] as an array indexed by (segment index, type index)."""
        return self.cp.copy()

    def consumed_bits_table(self) -> np.ndarray:
        """CW[d][t] * CD[d][t] as an array (capacity-constraint load)."""
        return (self.cw * self.cd).copy()

    def feasible_pairs(self) -> np.ndarray:
        """Boolean mask of pairs that can possibly hold the structure.

        A pair is infeasible when the structure alone would exceed the
        type's total ports or total capacity; the corresponding ``Z[d][t]``
        variable can be fixed to zero (model reduction), and a structure
        with *no* feasible type makes the whole design unmappable.
        """
        port_ok = self.cp <= self.type_total_ports[np.newaxis, :]
        bits_ok = (self.cw * self.cd) <= self.type_total_bits[np.newaxis, :]
        return port_ok & bits_ok

    def unmappable_structures(self) -> List[str]:
        """Names of structures that fit on no bank type at all."""
        mask = self.feasible_pairs()
        names = []
        for d_index, ds in enumerate(self.design.data_structures):
            if not mask[d_index].any():
                names.append(ds.name)
        return names
