"""The end-to-end mapping pipeline: global mapping, then detailed mapping.

This is the public entry point most users of the library want:
:class:`MemoryMapper` runs the global ILP, hands the type assignment to the
detailed mapper, validates the resulting placement, and — in the rare case
a type's packing fails (possible only for banks with more than two ports,
where the paper's port estimator is conservative) — re-runs global mapping
with the failing (structure, type) combinations forbidden, exactly the
retry loop Section 4.1 describes ("the global and detailed mappers need to
execute multiple times until a solution is found").
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..arch.board import Board
from ..design.design import Design
from ..ilp import SolveContext
from .detailed_mapper import DetailedMapper, DetailedMappingFailure
from .global_mapper import GlobalMapper
from .heuristic_mapper import GreedyMapper
from .mapping import GlobalMapping, MappingError, MappingResult
from .objective import CostModel, CostWeights
from .preprocess import Preprocessor
from .validate import ensure_valid, validate_detailed_mapping, validate_global_mapping

__all__ = ["MemoryMapper"]


class MemoryMapper:
    """Two-stage memory mapper (the paper's proposed flow).

    Parameters
    ----------
    board:
        Target architecture description.
    weights:
        Objective weights (latency / pin-delay / pin-I/O).
    solver:
        ILP backend name or instance (see :func:`repro.ilp.create_solver`).
    solver_options:
        Extra keyword options for the solver factory (e.g. ``time_limit``).
    capacity_mode:
        ``"strict"`` or ``"clique"`` — see :class:`repro.core.GlobalMapper`.
    max_retries:
        How many times the global stage may be re-run with forbidden pairs
        after a detailed-mapping failure before giving up.
    warm_start:
        When true (default) a greedy assignment seeds the ILP solver's
        incumbent, which speeds up branch-and-bound without affecting the
        optimum.
    warm_retries:
        When true (default) a :class:`repro.ilp.SolveContext` is threaded
        through the retry loop: retry ``N`` warm-starts from retry
        ``N-1``'s incumbent (repaired around the newly forbidden pair),
        reuses the cached standard form and keeps the pseudo-cost
        branching statistics.  ``False`` solves every retry cold — kept
        for benchmarking the old behaviour.
    validate:
        When true (default) both stages are checked by the validators and a
        :class:`repro.core.mapping.MappingError` is raised on any violation.
    mode:
        ``"exact"`` (default) or ``"fast"`` — see
        :class:`repro.core.GlobalMapper`.  Fast mode returns the first
        mapping certifying within ``gap_limit`` of a lower bound instead
        of proving optimality.
    gap_limit:
        Relative optimality-gap contract for fast mode (default 0.05).
    """

    def __init__(
        self,
        board: Board,
        weights: Optional[CostWeights] = None,
        solver: object = "auto",
        solver_options: Optional[Dict[str, object]] = None,
        capacity_mode: str = "strict",
        port_estimation: str = "paper",
        max_retries: int = 3,
        warm_start: bool = True,
        warm_retries: bool = True,
        validate: bool = True,
        mode: str = "exact",
        gap_limit: Optional[float] = None,
    ) -> None:
        self.board = board
        self.weights = weights or CostWeights()
        self.solver = solver
        self.solver_options = dict(solver_options or {})
        self.capacity_mode = capacity_mode
        self.port_estimation = port_estimation
        self.max_retries = max_retries
        self.warm_start = warm_start
        self.warm_retries = warm_retries
        self.validate = validate
        self.global_mapper = GlobalMapper(
            board,
            weights=self.weights,
            solver=solver,
            solver_options=self.solver_options,
            capacity_mode=capacity_mode,
            port_estimation=port_estimation,
            mode=mode,
            gap_limit=gap_limit,
        )
        self.mode = self.global_mapper.mode
        self.gap_limit = self.global_mapper.gap_limit
        self.detailed_mapper = DetailedMapper(board)

    # ------------------------------------------------------------------ api
    def map(
        self, design: Design, context: Optional[SolveContext] = None
    ) -> MappingResult:
        """Map ``design`` onto the board and return the combined result.

        ``context`` (optional) supplies the :class:`repro.ilp.SolveContext`
        threaded through the retry loop instead of a fresh one — this is
        how the explore subsystem chains a sweep: the context of design
        point ``N-1`` (rebased via :meth:`SolveContext.from_chain_dict`)
        seeds point ``N``'s incumbent and branching statistics.  When a
        context is given it is used even with ``warm_retries=False``.
        """
        preprocessor = Preprocessor(
            design, self.board, port_estimation=self.port_estimation
        )
        cost_model = CostModel(
            design, self.board, self.weights, preprocessor=preprocessor
        )

        warm_assignment = None
        if self.warm_start:
            try:
                warm_assignment = GreedyMapper(self.board, self.weights).solve(
                    design, preprocessor=preprocessor, cost_model=cost_model
                ).assignment
            except MappingError:
                warm_assignment = None  # greedy failure only loses the warm start

        forbidden: Set[Tuple[str, str]] = set()
        retries = 0
        global_time = 0.0
        detailed_time = 0.0
        if context is None:
            context = SolveContext() if self.warm_retries else None
        stage_stats: List[Dict[str, object]] = []

        while True:
            start = time.perf_counter()
            global_mapping = self.global_mapper.solve(
                design,
                warm_start=warm_assignment,
                forbidden_pairs=forbidden,
                preprocessor=preprocessor,
                cost_model=cost_model,
                context=context,
            )
            global_time += time.perf_counter() - start
            stage_stats.append(dict(global_mapping.solver_stats))

            if self.validate:
                ensure_valid(
                    validate_global_mapping(
                        design, self.board, global_mapping, preprocessor=preprocessor
                    ),
                    context="global mapping",
                )

            start = time.perf_counter()
            try:
                detailed = self.detailed_mapper.map(
                    design, global_mapping, preprocessor=preprocessor
                )
            except DetailedMappingFailure as failure:
                detailed_time += time.perf_counter() - start
                retries += 1
                if retries > self.max_retries:
                    raise MappingError(
                        f"detailed mapping kept failing after {self.max_retries} "
                        f"retries (last failure: {failure})"
                    ) from failure
                # Forbid the heaviest offender on the failing type and retry;
                # removing one structure from the over-subscribed type is the
                # smallest perturbation that changes the global solution.
                offenders = sorted(
                    failure.structures,
                    key=lambda name: design.by_name(name).size_bits,
                    reverse=True,
                )
                forbidden.add((offenders[0], failure.bank_type))
                warm_assignment = None
                continue
            detailed_time += time.perf_counter() - start

            if self.validate:
                ensure_valid(
                    validate_detailed_mapping(design, self.board, global_mapping, detailed),
                    context="detailed mapping",
                )

            cost = cost_model.evaluate_assignment(dict(global_mapping.assignment))
            return MappingResult(
                design=design,
                board=self.board,
                global_mapping=global_mapping,
                detailed_mapping=detailed,
                cost=cost,
                global_time=global_time,
                detailed_time=detailed_time,
                retries=retries,
                solve_stats=self._solve_stats(stage_stats, context, retries),
            )

    def _solve_stats(
        self,
        stage_stats: List[Dict[str, object]],
        context: Optional[SolveContext],
        retries: int,
    ) -> Dict[str, object]:
        """Aggregate the per-solve solver statistics of the retry loop.

        Works for every backend (the counters come from the per-solve
        stats dictionaries); the context adds its cross-retry extras when
        warm retries are enabled.
        """
        def total(key: str) -> int:
            return int(sum(int(s.get(key, 0) or 0) for s in stage_stats))

        def merge_counts(key: str) -> Dict[str, int]:
            merged: Dict[str, int] = {}
            for s in stage_stats:
                mapping = s.get(key) or {}
                if isinstance(mapping, dict):
                    for name, count in mapping.items():
                        merged[name] = merged.get(name, 0) + int(count)
            return merged

        presolve_rows = presolve_cols = 0
        for s in stage_stats:
            pres = s.get("presolve") or {}
            if isinstance(pres, dict):
                presolve_rows += int(pres.get("rows_dropped_ub", 0))
                presolve_rows += int(pres.get("rows_dropped_eq", 0))
                presolve_cols += int(pres.get("cols_fixed", 0))
        stats: Dict[str, object] = {
            "global_solves": len(stage_stats),
            "retries": retries,
            "lp_solves": total("lp_solves"),
            "nodes_explored": total("nodes_explored"),
            "simplex_iterations": total("simplex_iterations"),
            "warm_lp_solves": total("warm_lp_solves"),
            "basis_reuses": total("basis_reuses"),
            "refactorizations": total("refactorizations"),
            "etas_applied": total("etas_applied"),
            "ftran_nnz": total("ftran_nnz"),
            "btran_nnz": total("btran_nnz"),
            "refactor_triggers": merge_counts("refactor_triggers"),
            "pricing_pivots": merge_counts("pricing_pivots"),
            "incumbent_updates": total("incumbent_updates"),
            "heuristic_incumbents": total("heuristic_incumbents"),
            "dive_lp_solves": total("dive_lp_solves"),
            "dive_pivots": total("dive_pivots"),
            "lns_rounds": total("lns_rounds"),
            "presolve_rows_dropped": presolve_rows,
            "presolve_cols_fixed": presolve_cols,
            "warm_retries": context is not None,
            "backend": str(stage_stats[-1].get("backend", "")) if stage_stats else "",
            "mode": self.mode,
        }
        if stage_stats:
            # The achieved gap of the final (winning) global solve; NaN
            # for backends that never compute one (exact proves 0 but the
            # pure tree only fills this under a gap contract).
            gap = stage_stats[-1].get("gap")
            if isinstance(gap, (int, float)):
                stats["gap"] = float(gap)
        if context is not None:
            stats["warm_start_hits"] = context.warm_start_hits
            stats["form_reuses"] = context.form_reuses
        return stats

    def map_global_only(self, design: Design) -> GlobalMapping:
        """Run only the global stage (used by benchmarks and ablations)."""
        return self.global_mapper.solve(design)

    def map_batch(
        self,
        designs: Iterable[Design],
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        timeout: Optional[float] = None,
        retries: int = 0,
    ) -> List["JobResult"]:
        """Map many designs onto this board through the batch engine.

        Returns one :class:`repro.engine.JobResult` per design, in input
        order.  With ``jobs > 1`` the designs are mapped concurrently in
        worker processes; results are identical to a serial run.  Requires
        the mapper to have been configured with a solver backend *name*
        (instances cannot cross process boundaries).
        """
        from ..engine import (  # local: io -> core cycle
            MODE_FAST,
            MODE_PIPELINE,
            MappingEngine,
            MappingJob,
        )

        solver = self.solver if isinstance(self.solver, str) else None
        if solver is None:
            raise MappingError(
                "map_batch needs a solver backend name, not a solver instance"
            )
        batch = [
            MappingJob(
                board=self.board,
                design=design,
                weights=self.weights,
                solver=solver,
                solver_options=self.solver_options,
                capacity_mode=self.capacity_mode,
                port_estimation=self.port_estimation,
                warm_start=self.warm_start,
                warm_retries=self.warm_retries,
                mode=MODE_FAST if self.mode == "fast" else MODE_PIPELINE,
                gap_limit=self.gap_limit if self.mode == "fast" else None,
            )
            for design in designs
        ]
        engine = MappingEngine(
            jobs=jobs, cache_dir=cache_dir, timeout=timeout, retries=retries
        )
        return engine.run(batch)
