"""Multiple-processing-unit extension (the paper's main future-work item).

The paper assumes a single processing unit: "in the case of a single
processing unit, all design logic is mapped onto one hardware area, and all
logic areas are assumed equidistant from each physical bank.  The model
needs to be enhanced to support multiple processing units." (Section 6).

This module provides that enhancement in the form the global formulation
can absorb without changing its structure:

* a :class:`ProcessingUnit` carries a per-bank-type pin distance (how many
  pins an access from this unit traverses to reach a bank of that type),
  overriding the board-level ``pins_traversed`` default;
* a :class:`MultiPuSystem` combines a board, its processing units and an
  *affinity* map assigning every data structure to the unit that accesses
  it (the single-owner assumption keeps the cost linear in ``Z[d][t]`` —
  shared structures can be modelled by assigning them to the unit that
  accesses them most); and
* :class:`MultiPuCostModel` recomputes the pin-delay and pin-I/O cost
  components with the owner unit's distances, so that
  :class:`~repro.core.global_mapper.GlobalMapper` (and therefore
  :class:`~repro.core.pipeline.MemoryMapper`) optimises placements per
  processing unit simply by being handed this cost model.

Placement of the *logic* onto the units and routing/pin constraints — the
other half of the future-work paragraph — remain out of scope, exactly as
they are in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..arch.bank import ArchitectureError, BankType
from ..arch.board import Board
from ..design.design import Design
from ..design.datastruct import DesignError
from .global_mapper import GlobalMapper
from .mapping import GlobalMapping
from .objective import CostModel, CostWeights
from .preprocess import Preprocessor

__all__ = ["ProcessingUnit", "MultiPuSystem", "MultiPuCostModel", "MultiPuMapper"]


@dataclass(frozen=True)
class ProcessingUnit:
    """A processing unit and its distance to each memory bank type.

    ``pin_distances`` maps bank-type names to the number of pins an access
    from this unit traverses; types not listed fall back to the bank type's
    own ``pins_traversed`` (the single-unit model of the paper).
    """

    name: str
    pin_distances: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ArchitectureError("processing unit requires a non-empty name")
        for type_name, pins in self.pin_distances.items():
            if pins < 0:
                raise ArchitectureError(
                    f"processing unit {self.name!r}: negative pin distance to "
                    f"{type_name!r}"
                )

    def distance_to(self, bank: BankType) -> int:
        """Pins traversed from this unit to a bank of ``bank``'s type."""
        return int(self.pin_distances.get(bank.name, bank.pins_traversed))


@dataclass(frozen=True)
class MultiPuSystem:
    """A board plus its processing units and the structure→unit affinity."""

    board: Board
    processing_units: Tuple[ProcessingUnit, ...]
    #: ``data structure name -> processing unit name`` (the unit that
    #: accesses the structure).
    affinity: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.processing_units:
            raise ArchitectureError("a MultiPuSystem needs at least one processing unit")
        names = [pu.name for pu in self.processing_units]
        if len(set(names)) != len(names):
            raise ArchitectureError("duplicate processing unit names")
        known_types = set(self.board.type_names)
        for pu in self.processing_units:
            unknown = set(pu.pin_distances) - known_types
            if unknown:
                raise ArchitectureError(
                    f"processing unit {pu.name!r} references unknown bank types "
                    f"{sorted(unknown)}"
                )
        known_pus = set(names)
        for structure, pu_name in self.affinity.items():
            if pu_name not in known_pus:
                raise ArchitectureError(
                    f"structure {structure!r} is assigned to unknown processing "
                    f"unit {pu_name!r}"
                )

    def unit_by_name(self, name: str) -> ProcessingUnit:
        for pu in self.processing_units:
            if pu.name == name:
                return pu
        raise ArchitectureError(f"no processing unit named {name!r}")

    def owner_of(self, structure: str) -> ProcessingUnit:
        """The unit accessing ``structure`` (defaults to the first unit)."""
        name = self.affinity.get(structure)
        if name is None:
            return self.processing_units[0]
        return self.unit_by_name(name)

    def validate_against(self, design: Design) -> None:
        unknown = set(self.affinity) - set(design.segment_names)
        if unknown:
            raise DesignError(
                f"affinity references structures not in the design: {sorted(unknown)}"
            )


class MultiPuCostModel(CostModel):
    """Cost model whose pin terms use the owner unit's distances.

    The latency term is unchanged (bank latencies do not depend on which
    unit issues the access); the pin-delay and pin-I/O terms replace the
    bank type's global ``pins_traversed`` with the distance from the
    structure's owner unit to that type.
    """

    def __init__(
        self,
        design: Design,
        system: MultiPuSystem,
        weights: Optional[CostWeights] = None,
        preprocessor: Optional[Preprocessor] = None,
    ) -> None:
        system.validate_against(design)
        self.system = system
        super().__init__(design, system.board, weights, preprocessor=preprocessor)
        # Recompute the pin-dependent components with per-owner distances and
        # refresh the normalisation scales (the parent computed them with the
        # single-unit distances).
        import math

        for d_index, ds in enumerate(design.data_structures):
            owner = system.owner_of(ds.name)
            for t_index, bank in enumerate(system.board.bank_types):
                pins = owner.distance_to(bank)
                accesses = 0.5 * (ds.effective_reads + ds.effective_writes)
                self.pin_delay_cost[d_index, t_index] = accesses * pins
                cd = int(self.preprocessor.cd[d_index, t_index])
                cw = int(self.preprocessor.cw[d_index, t_index])
                address_pins = math.ceil(math.log2(cd)) if cd > 1 else 1
                self.pin_io_cost[d_index, t_index] = (address_pins + cw) * pins
        self._scales = self._component_scales()


class MultiPuMapper:
    """Global/detailed mapping for a multi-processing-unit system.

    A thin orchestration layer: it builds the :class:`MultiPuCostModel` and
    delegates to the standard :class:`GlobalMapper`, whose constraint set is
    unaffected by the number of units (ports and capacity are properties of
    the banks, not of the units).
    """

    def __init__(
        self,
        system: MultiPuSystem,
        weights: Optional[CostWeights] = None,
        solver: object = "auto",
        solver_options: Optional[Dict[str, object]] = None,
        capacity_mode: str = "strict",
        port_estimation: str = "paper",
    ) -> None:
        self.system = system
        self.weights = weights or CostWeights()
        self.port_estimation = port_estimation
        self.global_mapper = GlobalMapper(
            system.board,
            weights=self.weights,
            solver=solver,
            solver_options=solver_options,
            capacity_mode=capacity_mode,
            port_estimation=port_estimation,
        )

    def solve(self, design: Design) -> GlobalMapping:
        """Solve the global mapping with per-unit pin costs."""
        preprocessor = Preprocessor(
            design, self.system.board, port_estimation=self.port_estimation
        )
        cost_model = MultiPuCostModel(
            design, self.system, self.weights, preprocessor=preprocessor
        )
        return self.global_mapper.solve(
            design, preprocessor=preprocessor, cost_model=cost_model
        )

    def map(self, design: Design):
        """Full two-stage mapping (global with multi-PU costs, then detailed)."""
        from .detailed_mapper import DetailedMapper

        global_mapping = self.solve(design)
        detailed = DetailedMapper(self.system.board).map(design, global_mapping)
        return global_mapping, detailed
