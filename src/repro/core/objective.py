"""Cost model of the global-mapping objective (Section 4.1.3).

The ILP minimises a weighted sum of three per-assignment cost components,
each a linear function of the ``Z[d][t]`` assignment variables:

Latency cost
    :math:`\\sum_d \\sum_t Z_{dt} \\cdot D_d \\cdot (RL_t + WL_t)` — assuming one
    read and one write per word of the structure (the paper's stated
    assumption).  When footprint information (read/write counts) is
    attached to a data structure it is used instead of the depth, which is
    a strict generalisation that reduces to the paper's cost when absent.

Pin-delay cost
    :math:`\\sum_d \\sum_t Z_{dt} \\cdot D_d \\cdot T_t` — accesses to banks that are
    further away (more pins traversed) run at a lower effective clock.

Pin-I/O cost
    :math:`\\sum_d \\sum_t Z_{dt} \\cdot (\\lceil\\log_2 CD_{dt}\\rceil + CW_{dt}) \\cdot T_t`
    — a wide/deep structure placed off-chip needs address and data pins.

Each component is multiplied by a weight :math:`\\alpha_i`; weights may be
given explicitly or derived automatically so that every component is
normalised by its largest value over all (d, t) pairs, which is the
"normalize with respect to all other cost components" reading of the
paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..arch.bank import BankType
from ..arch.board import Board
from ..design.datastruct import DataStructure
from ..design.design import Design
from .preprocess import Preprocessor

__all__ = ["CostWeights", "CostModel", "CostBreakdown"]


@dataclass(frozen=True)
class CostWeights:
    """Weights :math:`\\alpha_i` of the three objective components.

    ``normalize=True`` rescales each component by its maximum value over
    all (structure, type) pairs before applying the weights, so that the
    three terms are commensurable regardless of the design's absolute
    sizes.
    """

    latency: float = 1.0
    pin_delay: float = 1.0
    pin_io: float = 1.0
    normalize: bool = True

    def __post_init__(self) -> None:
        if self.latency < 0 or self.pin_delay < 0 or self.pin_io < 0:
            raise ValueError("cost weights must be non-negative")
        if self.latency == self.pin_delay == self.pin_io == 0:
            raise ValueError("at least one cost weight must be positive")

    @classmethod
    def latency_only(cls) -> "CostWeights":
        """Optimise purely for access latency (used in ablations)."""
        return cls(latency=1.0, pin_delay=0.0, pin_io=0.0, normalize=False)

    @classmethod
    def interconnect_only(cls) -> "CostWeights":
        """Optimise purely for interconnection cost (pins)."""
        return cls(latency=0.0, pin_delay=1.0, pin_io=1.0)


@dataclass(frozen=True)
class CostBreakdown:
    """Objective value of a concrete assignment, split by component."""

    latency: float
    pin_delay: float
    pin_io: float
    weighted_total: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "latency": self.latency,
            "pin_delay": self.pin_delay,
            "pin_io": self.pin_io,
            "weighted_total": self.weighted_total,
        }


class CostModel:
    """Per-pair cost coefficients for a (design, board) instance.

    The model exposes a dense ``[segment, type]`` coefficient matrix that
    the global and complete mappers attach to their ``Z`` variables, plus
    evaluation helpers used by the heuristic mappers, the pipeline report
    and the quality benchmarks.
    """

    def __init__(
        self,
        design: Design,
        board: Board,
        weights: Optional[CostWeights] = None,
        preprocessor: Optional[Preprocessor] = None,
    ) -> None:
        self.design = design
        self.board = board
        self.weights = weights or CostWeights()
        self.preprocessor = preprocessor or Preprocessor(design, board)

        num_segments = design.num_segments
        num_types = board.num_types

        self.latency_cost = np.zeros((num_segments, num_types), dtype=np.float64)
        self.pin_delay_cost = np.zeros((num_segments, num_types), dtype=np.float64)
        self.pin_io_cost = np.zeros((num_segments, num_types), dtype=np.float64)

        for d_index, ds in enumerate(design.data_structures):
            for t_index, bank in enumerate(board.bank_types):
                self.latency_cost[d_index, t_index] = self._latency(ds, bank)
                self.pin_delay_cost[d_index, t_index] = self._pin_delay(ds, bank)
                self.pin_io_cost[d_index, t_index] = self._pin_io(d_index, t_index, bank)

        self._scales = self._component_scales()

    # ------------------------------------------------------------ components
    @staticmethod
    def _latency(ds: DataStructure, bank: BankType) -> float:
        """Latency term: accesses weighted by the type's read/write latency."""
        return float(
            ds.effective_reads * bank.read_latency
            + ds.effective_writes * bank.write_latency
        )

    @staticmethod
    def _pin_delay(ds: DataStructure, bank: BankType) -> float:
        """Pin-delay term: every access pays for the pins it traverses."""
        accesses = 0.5 * (ds.effective_reads + ds.effective_writes)
        return float(accesses * bank.pins_traversed)

    def _pin_io(self, d_index: int, t_index: int, bank: BankType) -> float:
        """Pin-I/O term: address + data pins needed if placed off-chip."""
        cd = int(self.preprocessor.cd[d_index, t_index])
        cw = int(self.preprocessor.cw[d_index, t_index])
        address_pins = math.ceil(math.log2(cd)) if cd > 1 else 1
        return float((address_pins + cw) * bank.pins_traversed)

    def _component_scales(self) -> Tuple[float, float, float]:
        if not self.weights.normalize:
            return (1.0, 1.0, 1.0)

        def scale(matrix: np.ndarray) -> float:
            peak = float(matrix.max()) if matrix.size else 0.0
            return peak if peak > 0 else 1.0

        return (
            scale(self.latency_cost),
            scale(self.pin_delay_cost),
            scale(self.pin_io_cost),
        )

    # -------------------------------------------------------------- queries
    def coefficient_matrix(self) -> np.ndarray:
        """Weighted per-pair objective coefficients (``[segment, type]``)."""
        s_lat, s_pin, s_io = self._scales
        return (
            self.weights.latency * self.latency_cost / s_lat
            + self.weights.pin_delay * self.pin_delay_cost / s_pin
            + self.weights.pin_io * self.pin_io_cost / s_io
        )

    def coefficient(self, d_index: int, t_index: int) -> float:
        return float(self.coefficient_matrix()[d_index, t_index])

    def evaluate_assignment(self, assignment: Dict[str, str]) -> CostBreakdown:
        """Cost of a complete ``structure name -> bank type name`` assignment."""
        s_lat, s_pin, s_io = self._scales
        latency = pin_delay = pin_io = weighted = 0.0
        coefficients = self.coefficient_matrix()
        for name, type_name in assignment.items():
            d_index = self.design.index_of(name)
            t_index = self.board.type_index(type_name)
            latency += self.latency_cost[d_index, t_index]
            pin_delay += self.pin_delay_cost[d_index, t_index]
            pin_io += self.pin_io_cost[d_index, t_index]
            weighted += coefficients[d_index, t_index]
        return CostBreakdown(
            latency=latency,
            pin_delay=pin_delay,
            pin_io=pin_io,
            weighted_total=weighted,
        )
