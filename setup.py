"""Legacy setuptools entry point.

The project is fully described by ``pyproject.toml``; this shim exists only
so that ``python setup.py develop`` works in offline environments where the
``wheel`` package (required by pip's PEP 660 editable-install path) is not
available.
"""

from setuptools import setup

setup()
