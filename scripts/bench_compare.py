#!/usr/bin/env python
"""Validate and diff ``BENCH_*.json`` benchmark artifacts.

Two modes:

``--check FILE``
    Validate that an artifact exists and is well-formed (used by the CI
    benchmark smoke job).  Exit 0 when valid, 1 when missing/malformed.

``BASELINE CANDIDATE``
    Diff two artifacts of the same benchmark: per-label wall-time and
    solver-work deltas plus the aggregate totals.  With
    ``--fail-over PCT`` the script exits 1 when the candidate's total
    wall time regressed by more than PCT percent over the baseline —
    except for ``lp_kernel`` artifacts, which gate on total pivots (a
    deterministic counter, comparable across machines) instead.

Examples::

    python scripts/bench_compare.py --check BENCH_table3.json
    python scripts/bench_compare.py BENCH_table3_legacy.json BENCH_table3.json
    python scripts/bench_compare.py old.json new.json --fail-over 20
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

#: Keys every bench artifact must carry to be considered well-formed.
REQUIRED_KEYS = ("kind", "artifact_version", "name", "solver", "num_points",
                 "wall_seconds", "results")

#: Aggregate counters diffed when both artifacts carry them.
TOTAL_KEYS = (
    "wall_seconds",
    "serial_seconds",
    "total_lp_solves",
    "total_nodes_explored",
    "total_simplex_iterations",
    "total_warm_lp_solves",
    "total_basis_reuses",
    "total_refactorizations",
    "total_etas_applied",
    "total_ftran_nnz",
    "total_btran_nnz",
    "total_pivots",
    "total_global_solves",
    "total_retries",
    "total_presolve_rows_dropped",
    "total_presolve_cols_fixed",
    "total_exact_nodes",
    "total_heuristic_incumbents",
    "total_dive_pivots",
    "total_lns_rounds",
    "num_fast_certified",
)

#: Solver-work keys a table3 artifact must carry since the revised-simplex
#: kernel landed (the bench-smoke job gates on their presence).
TABLE3_KEYS = ("total_warm_lp_solves", "total_basis_reuses",
               "total_refactorizations")

#: Aggregate counters an lp_kernel artifact (the LP kernel
#: micro-benchmark, ``benchmarks/bench_lp_kernel.py``) must carry.
#: These are deterministic — same corpus, same counts on any machine —
#: which is why the regression gate for this artifact runs on pivots,
#: not wall time.
LP_KERNEL_KEYS = ("total_pivots", "total_etas_applied",
                  "total_refactorizations", "all_objectives_match")

#: Aggregate counters a heuristics artifact
#: (``benchmarks/bench_heuristics.py``) must carry.  Like the kernel
#: benchmark, its gate runs on deterministic counters — exact node
#: counts and the gap contract — not wall time.
HEURISTICS_KEYS = ("gap_limit", "total_exact_nodes",
                   "total_heuristic_incumbents", "num_fast_certified",
                   "all_gaps_ok")

#: Keys a serve_scale artifact (``benchmarks/bench_serve_scale.py``)
#: must carry.  Its gates run exclusively on deterministic counters —
#: dedupe totals, shard balance, warm reuses, fingerprint equality —
#: never on wall time or the timing-dependent shed/retry numbers.
SERVE_SCALE_KEYS = ("replicas", "max_inflight", "totals", "by_replica",
                    "shard_counts", "warm", "fingerprint_check", "phases")


def load_artifact(path: Path) -> Dict[str, Any]:
    if not path.exists():
        raise SystemExit(f"error: artifact {path} does not exist")
    try:
        with path.open("r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read artifact {path}: {exc}")
    problems = validate(document)
    if problems:
        raise SystemExit(
            f"error: artifact {path} is malformed: " + "; ".join(problems)
        )
    return document


#: Extra keys an explore artifact must carry on top of REQUIRED_KEYS.
EXPLORE_KEYS = ("grid", "chains", "fingerprint", "pareto_front",
                "warm_chain", "total_lp_solves")


def validate(document: Any) -> List[str]:
    """Return a list of problems (empty when the artifact is well-formed)."""
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["top-level value is not an object"]
    if document.get("name") == "serve_scale":
        # The serve-tier artifact is phase-structured, not per-label rows;
        # it has its own schema and deterministic gates.
        return _validate_serve_scale(document)
    for key in REQUIRED_KEYS:
        if key not in document:
            problems.append(f"missing key {key!r}")
    if document.get("kind") != "bench_artifact":
        problems.append(f"kind is {document.get('kind')!r}, "
                        "expected 'bench_artifact'")
    results = document.get("results")
    if not isinstance(results, list):
        problems.append("'results' is not a list")
    else:
        if len(results) != document.get("num_points", len(results)) and \
                document.get("name") in ("table3", "explore") and \
                not document.get("streamed"):
            # Streamed explore artifacts spool their rows to a JSONL
            # file; the inline results list is empty by design.
            problems.append("num_points does not match len(results)")
        for i, row in enumerate(results):
            if not isinstance(row, dict) or "label" not in row:
                problems.append(f"results[{i}] lacks a label")
                break
    if document.get("name") == "explore":
        problems.extend(_validate_explore(document))
    if document.get("name") == "table3":
        for key in TABLE3_KEYS:
            if key not in document:
                problems.append(f"table3 artifact missing key {key!r}")
    if document.get("name") == "lp_kernel":
        for key in LP_KERNEL_KEYS:
            if key not in document:
                problems.append(f"lp_kernel artifact missing key {key!r}")
        if document.get("all_objectives_match") is False:
            problems.append("lp_kernel artifact records a kernel that "
                            "disagreed with the dense-inverse reference")
    if document.get("name") == "heuristics":
        for key in HEURISTICS_KEYS:
            if key not in document:
                problems.append(f"heuristics artifact missing key {key!r}")
        if document.get("all_gaps_ok") is False:
            problems.append("heuristics artifact records a fast run that "
                            "violated its optimality-gap contract")
    return problems


def _validate_serve_scale(document: Dict[str, Any]) -> List[str]:
    """Schema + deterministic gates of a serve_scale artifact."""
    problems: List[str] = []
    if document.get("kind") != "bench_artifact":
        problems.append(f"kind is {document.get('kind')!r}, "
                        "expected 'bench_artifact'")
    for key in SERVE_SCALE_KEYS:
        if key not in document:
            problems.append(f"serve_scale artifact missing key {key!r}")
    totals = document.get("totals")
    if not isinstance(totals, dict):
        return problems + ["'totals' is not an object"]
    if int(totals.get("errors", 0)):
        problems.append(f"traffic run recorded {totals['errors']} errors")
    if int(totals.get("fingerprint_conflicts", 0)):
        problems.append("one cache key was served with two different "
                        "fingerprints")
    if int(totals.get("completed", 0)) <= 0:
        problems.append("no job completed")
    if int(totals.get("deduped", 0)) + int(totals.get("cache_hits", 0)) <= 0:
        problems.append("duplicate-heavy traffic produced no dedupe")
    check = document.get("fingerprint_check")
    if not isinstance(check, dict):
        problems.append("'fingerprint_check' is not an object")
    else:
        if int(check.get("compared", 0)) <= 0:
            problems.append("fingerprint check compared nothing")
        if check.get("mismatches"):
            problems.append("served fingerprints diverged from the direct "
                            "engine run")
        if check.get("unknown_keys"):
            problems.append("served cache keys not reproducible directly: "
                            f"{check['unknown_keys']}")
    replicas = int(document.get("replicas", 0))
    shard_counts = document.get("shard_counts")
    if isinstance(shard_counts, dict) and replicas >= 2:
        busy = sum(1 for count in shard_counts.values() if int(count) > 0)
        if busy < 2:
            problems.append(
                f"traffic landed on {busy} shard(s) out of {replicas}; "
                "the consistent-hash ring is not spreading load"
            )
    warm = document.get("warm")
    if isinstance(warm, dict) and replicas >= 2:
        if int(warm.get("reuses", 0)) <= 0:
            problems.append("no warm-state reuse despite shared-identity "
                            "resubmissions")
        if int(warm.get("imports", 0)) <= 0:
            problems.append("no cross-replica warm import: every reuse was "
                            "replica-local")
    phases = document.get("phases")
    if isinstance(phases, dict) and "near" in phases:
        # The near phase is the similarity-keyed warm-start gate.  Like
        # every other gate here it reads deterministic counters only:
        # the schedule is seeded, so the near-duplicate count and the
        # similarity imports it must produce are reproducible run to run.
        if int(totals.get("scheduled_near_duplicates", 0)) <= 0:
            problems.append("near phase present but the traffic schedule "
                            "contained no near-duplicates")
        if isinstance(warm, dict):
            for key in ("similar_imports", "similar_rejects"):
                if key not in warm:
                    problems.append(f"warm counters missing key {key!r}: "
                                    "the similarity index is not reporting")
            if int(warm.get("similar_imports", 0)) <= 0:
                problems.append("near-duplicate traffic produced no "
                                "similarity warm import")
    return problems


def _validate_explore(document: Dict[str, Any]) -> List[str]:
    """Schema checks specific to ``repro explore`` artifacts."""
    problems: List[str] = []
    for key in EXPLORE_KEYS:
        if key not in document:
            problems.append(f"explore artifact missing key {key!r}")
    grid = document.get("grid")
    if isinstance(grid, dict):
        if grid.get("kind") != "scenario_grid" or not grid.get("sweeps"):
            problems.append("'grid' is not a scenario_grid with sweeps")
    elif "grid" in document:
        problems.append("'grid' is not an object")
    streamed = bool(document.get("streamed"))
    if streamed and not document.get("results_path"):
        problems.append("streamed explore artifact missing 'results_path'")
    if streamed:
        # Rows live in the spool; the chains list is the label universe.
        labels = {label for chain in document.get("chains", [])
                  if isinstance(chain, list) for label in chain}
    else:
        labels = {row.get("label") for row in document.get("results", [])
                  if isinstance(row, dict)}
    front = document.get("pareto_front")
    if isinstance(front, list):
        bad = [label for label in front if not isinstance(label, str)]
        if bad:
            problems.append(f"pareto_front entries are not labels: {bad}")
        unknown = [label for label in front
                   if isinstance(label, str) and label not in labels]
        if unknown:
            problems.append(f"pareto_front references unknown labels {unknown}")
    elif "pareto_front" in document:
        problems.append("'pareto_front' is not a list")
    chains = document.get("chains")
    if isinstance(chains, list):
        if any(not isinstance(chain, list) for chain in chains):
            problems.append("'chains' entries are not lists of labels")
        else:
            chained = sum(len(chain) for chain in chains)
            covered = (document.get("num_points", chained) if streamed
                       else len(document.get("results", [])))
            if chained != covered:
                problems.append("chains do not cover every result exactly once")
    elif "chains" in document:
        problems.append("'chains' is not a list")
    return problems


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def _delta(base: Optional[float], cand: Optional[float]) -> str:
    if base is None or cand is None or not isinstance(base, (int, float)) \
            or not isinstance(cand, (int, float)):
        return "-"
    diff = cand - base
    pct = f" ({100.0 * diff / base:+.1f}%)" if base else ""
    return f"{diff:+.3f}{pct}"


def compare(baseline: Dict[str, Any], candidate: Dict[str, Any],
            fail_over: Optional[float]) -> int:
    if baseline.get("name") == candidate.get("name") == "serve_scale":
        return _compare_serve_scale(baseline, candidate)
    print(f"baseline : {baseline['name']} (solver={baseline.get('solver')}, "
          f"jobs={baseline.get('jobs')}, warm_retries="
          f"{baseline.get('warm_retries')}, presolve={baseline.get('presolve')})")
    print(f"candidate: {candidate['name']} (solver={candidate.get('solver')}, "
          f"jobs={candidate.get('jobs')}, warm_retries="
          f"{candidate.get('warm_retries')}, presolve={candidate.get('presolve')})")
    print()

    print(f"{'metric':<30} {'baseline':>12} {'candidate':>12} {'delta':>20}")
    for key in TOTAL_KEYS:
        base = baseline.get(key)
        cand = candidate.get(key)
        if base is None and cand is None:
            continue
        print(f"{key:<30} {_fmt(base):>12} {_fmt(cand):>12} "
              f"{_delta(base, cand):>20}")
    print()

    base_rows = {row["label"]: row for row in baseline.get("results", [])}
    cand_rows = {row["label"]: row for row in candidate.get("results", [])}
    shared = [label for label in base_rows if label in cand_rows]
    objective_mismatches: List[str] = []
    if shared:
        print(f"{'label':<34} {'base s':>9} {'cand s':>9} "
              f"{'base lp':>8} {'cand lp':>8} {'objectives':>11}")
        for label in shared:
            b, c = base_rows[label], cand_rows[label]
            b_obj = b.get("global_objective",
                          b.get("objective", b.get("exact_objective")))
            c_obj = c.get("global_objective",
                          c.get("objective", c.get("exact_objective")))
            match = "-"
            if isinstance(b_obj, (int, float)) and isinstance(c_obj, (int, float)):
                scale = max(1e-9, abs(b_obj))
                if abs(b_obj - c_obj) / scale <= 1e-6:
                    match = "same"
                else:
                    match = "DIFFER"
                    objective_mismatches.append(label)
            b_lp = (b.get("solve_stats") or {}).get(
                "lp_solves", b.get("pivots", b.get("exact_nodes", "-")))
            c_lp = (c.get("solve_stats") or {}).get(
                "lp_solves", c.get("pivots", c.get("exact_nodes", "-")))
            b_s = b.get("global_detailed_seconds",
                        b.get("wall_time", b.get("wall_seconds",
                              b.get("exact_wall_seconds", 0.0)))) or 0.0
            c_s = c.get("global_detailed_seconds",
                        c.get("wall_time", c.get("wall_seconds",
                              c.get("exact_wall_seconds", 0.0)))) or 0.0
            print(f"{label:<34} {b_s:>9.3f} {c_s:>9.3f} "
                  f"{str(b_lp):>8} {str(c_lp):>8} {match:>11}")
    missing = sorted(set(base_rows) ^ set(cand_rows))
    if missing:
        print(f"\nwarning: labels present in only one artifact: {missing}")

    if fail_over is not None:
        if baseline.get("name") == candidate.get("name") == "heuristics":
            # Heuristics artifacts gate on the exact tree's node counts
            # and the fast lane's certification rate — both deterministic
            # under the seeded portfolio — never on wall time.
            base_nodes = float(baseline.get("total_exact_nodes") or 0.0)
            cand_nodes = float(candidate.get("total_exact_nodes") or 0.0)
            if base_nodes > 0 and \
                    cand_nodes > base_nodes * (1.0 + fail_over / 100.0):
                print(f"\nFAIL: candidate exact node count {cand_nodes:.0f} "
                      f"exceeds baseline {base_nodes:.0f} by more than "
                      f"{fail_over:.0f}%")
                return 1
            base_cert = int(baseline.get("num_fast_certified") or 0)
            cand_cert = int(candidate.get("num_fast_certified") or 0)
            if cand_cert < base_cert:
                print(f"\nFAIL: fast lane certified only {cand_cert} "
                      f"point(s), baseline certified {base_cert}")
                return 1
            return 0
        if baseline.get("name") == candidate.get("name") == "lp_kernel":
            # Kernel artifacts gate on total pivots: deterministic on any
            # machine (same corpus, same counts), unlike wall time.
            base_pivots = float(baseline.get("total_pivots") or 0.0)
            cand_pivots = float(candidate.get("total_pivots") or 0.0)
            if base_pivots > 0 and \
                    cand_pivots > base_pivots * (1.0 + fail_over / 100.0):
                print(f"\nFAIL: candidate total pivots {cand_pivots:.0f} "
                      f"exceed baseline {base_pivots:.0f} by more than "
                      f"{fail_over:.0f}%")
                return 1
            return 0
        if baseline.get("name") == candidate.get("name") == "explore":
            # Mapping objectives are deterministic (same grid, seed and
            # solver give the same mappings on any machine), so a
            # per-label objective divergence is a correctness regression,
            # never noise — gate on it before the wall-time check.
            if objective_mismatches:
                print(f"\nFAIL: objectives differ on "
                      f"{len(objective_mismatches)} shared point(s): "
                      f"{objective_mismatches[:10]}")
                return 1
        base_wall = float(baseline.get("wall_seconds") or 0.0)
        cand_wall = float(candidate.get("wall_seconds") or 0.0)
        if base_wall > 0 and cand_wall > base_wall * (1.0 + fail_over / 100.0):
            print(f"\nFAIL: candidate wall time {cand_wall:.3f}s exceeds "
                  f"baseline {base_wall:.3f}s by more than {fail_over:.0f}%")
            return 1
    return 0


def _compare_serve_scale(baseline: Dict[str, Any],
                         candidate: Dict[str, Any]) -> int:
    """Diff two serve_scale artifacts on their deterministic counters.

    Validation (:func:`_validate_serve_scale`) already enforced the hard
    gates on each artifact individually; the diff is informational plus
    one relative check: the candidate must not dedupe *less* effectively
    than the baseline on the same traffic schedule.
    """
    print(f"baseline : serve_scale ({baseline.get('replicas')} replicas, "
          f"max_inflight={baseline.get('max_inflight')})")
    print(f"candidate: serve_scale ({candidate.get('replicas')} replicas, "
          f"max_inflight={candidate.get('max_inflight')})")
    print()
    base_totals = baseline.get("totals") or {}
    cand_totals = candidate.get("totals") or {}
    print(f"{'counter':<28} {'baseline':>12} {'candidate':>12} {'delta':>20}")
    for key in sorted(set(base_totals) | set(cand_totals)):
        print(f"{key:<28} {_fmt(base_totals.get(key)):>12} "
              f"{_fmt(cand_totals.get(key)):>12} "
              f"{_delta(base_totals.get(key), cand_totals.get(key)):>20}")
    for label, source in (("warm", "warm"),):
        base = baseline.get(source) or {}
        cand = candidate.get(source) or {}
        for key in sorted(set(base) | set(cand)):
            print(f"{label + '.' + key:<28} {_fmt(base.get(key)):>12} "
                  f"{_fmt(cand.get(key)):>12} "
                  f"{_delta(base.get(key), cand.get(key)):>20}")
    same_traffic = (
        baseline.get("replicas") == candidate.get("replicas")
        and base_totals.get("scheduled") == cand_totals.get("scheduled")
    )
    if same_traffic:
        base_dedupe = int(base_totals.get("deduped", 0)) + \
            int(base_totals.get("cache_hits", 0))
        cand_dedupe = int(cand_totals.get("deduped", 0)) + \
            int(cand_totals.get("cache_hits", 0))
        if cand_dedupe < base_dedupe:
            print(f"\nFAIL: candidate answered only {cand_dedupe} duplicates "
                  f"without a fresh solve, baseline answered {base_dedupe}")
            return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="validate / diff BENCH_*.json artifacts")
    parser.add_argument("artifacts", nargs="*", type=Path,
                        help="BASELINE CANDIDATE artifact files")
    parser.add_argument("--check", type=Path, default=None,
                        help="only validate this artifact and exit")
    parser.add_argument("--fail-over", type=float, default=None, metavar="PCT",
                        help="exit 1 when candidate wall time (total pivots "
                             "for lp_kernel artifacts) regresses by more "
                             "than PCT percent")
    args = parser.parse_args(argv)

    if args.check is not None:
        document = load_artifact(args.check)
        if document.get("name") == "serve_scale":
            totals = document.get("totals") or {}
            print(f"ok: {args.check} is a well-formed serve_scale artifact "
                  f"({document.get('replicas')} replicas, "
                  f"{totals.get('completed')} jobs completed, "
                  f"{totals.get('deduped', 0) + totals.get('cache_hits', 0)} "
                  "answered without a fresh solve)")
            return 0
        print(f"ok: {args.check} is a well-formed bench artifact "
              f"({document['name']}, {document['num_points']} points, "
              f"{document['wall_seconds']:.3f}s)")
        return 0

    if len(args.artifacts) != 2:
        parser.error("expected BASELINE and CANDIDATE artifacts (or --check FILE)")
    baseline = load_artifact(args.artifacts[0])
    candidate = load_artifact(args.artifacts[1])
    return compare(baseline, candidate, args.fail_over)


if __name__ == "__main__":
    sys.exit(main())
