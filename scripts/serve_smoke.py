#!/usr/bin/env python
"""End-to-end smoke test of the mapping service (the CI `serve-smoke` job).

Boots ``repro serve`` as a real subprocess, drives it through the real
``repro submit`` CLI, and asserts the serving guarantees the repository
makes:

1. the server comes up and answers ``/healthz``;
2. N concurrent submissions (with duplicates) all complete, duplicates
   dedupe to fewer solves than submissions, and coalescing produced
   fewer engine batches than jobs;
3. every served fingerprint equals the fingerprint of the equivalent
   direct ``repro batch`` run — the service changes *where* mappings are
   computed, never *what* they are;
4. a mixed exact/fast burst keeps both contracts: fast responses carry a
   certified optimality gap within the requested limit, and the exact
   jobs' fingerprints are untouched by the fast lane;
5. the server shuts down cleanly on request (bounded by a timeout, with
   SIGKILL as the fallback so CI never hangs) and stops answering
   ``/healthz`` afterwards;
6. a **replicated tier** (``repro serve --replicas 2``) answers the same
   traffic with fingerprints identical to a direct run, spreads distinct
   jobs across both shards, dedupes duplicates through the shared store,
   and survives an open-loop ``repro loadgen`` burst with zero errors.

Boot is retried over a small set of candidate ports (a fixed port can
race a previous run still tearing down on a shared CI box), server
stdout is pumped continuously into a bounded tail (so a chatty replica
never blocks on a full pipe), and every failure report carries the
captured log tail.

Exit code 0 on success, 1 on any violated expectation.  Run it locally::

    PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from collections import deque
from typing import Deque, List, Sequence, Tuple

PORT = int(os.environ.get("SERVE_SMOKE_PORT", "18742"))
ROUTER_PORT = PORT + 1
BOARD = "virtex-xcv1000"
DESIGNS = ["fir-filter", "matrix-multiply", "image-pipeline", "fft"]
REPEAT = 2  # 4 designs x 2 = 8 concurrent submissions, 4 unique solves
SOLVER = "bnb-pure"
STARTUP_TIMEOUT = 60.0
SHUTDOWN_TIMEOUT = 30.0
#: Boot attempts (each on a different candidate port) before giving up.
BOOT_ATTEMPTS = 3
#: Most recent server log lines kept for failure reports.
LOG_TAIL = 400


def cli(*args: str, check: bool = True) -> subprocess.CompletedProcess:
    command = [sys.executable, "-m", "repro", *args]
    completed = subprocess.run(command, capture_output=True, text=True)
    if check and completed.returncode != 0:
        raise AssertionError(
            f"command {' '.join(command)} exited "
            f"{completed.returncode}:\n{completed.stdout}\n{completed.stderr}"
        )
    return completed


def wait_for_health(deadline: float, url: str) -> None:
    while time.monotonic() < deadline:
        probe = cli("submit", "--url", url, "--health", check=False)
        if probe.returncode == 0:
            return
        time.sleep(0.25)
    raise AssertionError(f"server at {url} did not answer /healthz in time")


def _drain(stream, sink: Deque[str]) -> None:
    """Pump server stdout into a bounded deque until EOF.

    Keeps the pipe from filling (which would block the server on
    ``print``) while retaining the recent tail for failure reports.
    """
    for line in iter(stream.readline, ""):
        sink.append(line.rstrip())


def start_server(
    extra_args: Sequence[str], base_port: int, log_prefix: str
) -> Tuple[subprocess.Popen, str, Deque[str]]:
    """Boot ``repro serve`` with a bounded retry over candidate ports."""
    last_log: List[str] = []
    for attempt in range(BOOT_ATTEMPTS):
        port = base_port + 20 * attempt
        url = f"http://127.0.0.1:{port}"
        logs: Deque[str] = deque(maxlen=LOG_TAIL)
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", str(port), *extra_args,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        threading.Thread(
            target=_drain, args=(server.stdout, logs), daemon=True
        ).start()
        try:
            wait_for_health(time.monotonic() + STARTUP_TIMEOUT, url=url)
            return server, url, logs
        except AssertionError:
            stop_server(server, log_prefix, logs)
            last_log = list(logs)
            print(
                f"[{log_prefix}] boot attempt {attempt + 1}/{BOOT_ATTEMPTS} "
                f"on port {port} failed",
                file=sys.stderr,
            )
    raise AssertionError(
        f"server did not boot after {BOOT_ATTEMPTS} attempts; last log:\n"
        + "\n".join(last_log)
    )


def stop_server(
    server: subprocess.Popen, log_prefix: str, logs: Deque[str]
) -> None:
    if server.poll() is None:
        server.send_signal(signal.SIGTERM)
        try:
            server.wait(timeout=10)
        except subprocess.TimeoutExpired:
            server.kill()
            server.wait()
    if logs:
        print(f"[{log_prefix}] server log (last {len(logs)} lines):")
        for line in logs:
            print(f"  {line}")
        logs.clear()


def assert_clean_shutdown(
    server: subprocess.Popen, url: str, what: str
) -> None:
    """Post-shutdown teardown contract: clean exit, port released."""
    try:
        code = server.wait(timeout=SHUTDOWN_TIMEOUT)
    except subprocess.TimeoutExpired:
        raise AssertionError(
            f"{what} did not exit within {SHUTDOWN_TIMEOUT:.0f}s of shutdown"
        )
    assert code == 0, f"{what} exited {code} after graceful shutdown"
    probe = cli("submit", "--url", url, "--health", check=False)
    assert probe.returncode != 0, (
        f"{what} still answers /healthz after reporting shutdown"
    )


def direct_reference() -> dict:
    """design name -> fingerprint from a direct ``repro batch`` run."""
    batch = cli(
        "batch", "--board", BOARD, "--solver", SOLVER,
        *[arg for design in DESIGNS for arg in ("--design", design)],
        "--json",
    )
    return {
        result["label"].split("@")[0]: result["fingerprint"]
        for result in json.loads(batch.stdout)["results"]
    }


def replicated_phase(reference: dict) -> None:
    """Boot a 2-replica tier and hold it to the single-server contract."""
    cache_dir = tempfile.mkdtemp(prefix="serve-smoke-cache-")
    server, url, logs = start_server(
        [
            "--replicas", "2", "--cache-dir", cache_dir,
            "--max-batch", "4", "--max-wait-ms", "25",
        ],
        ROUTER_PORT,
        "smoke/replicas",
    )
    try:
        print(f"[smoke/replicas] 2-replica tier is up at {url}")

        submit = cli(
            "submit", "--url", url, "--board", BOARD,
            "--solver", SOLVER,
            *[arg for design in DESIGNS for arg in ("--design", design)],
            "--repeat", str(REPEAT), "--json",
        )
        submitted = json.loads(submit.stdout)
        jobs = submitted["jobs"]
        assert len(jobs) == len(DESIGNS) * REPEAT, submitted
        assert submitted["num_failed"] == 0, submitted
        deduped = sum(1 for job in jobs if job["deduped"] or job["cache_hit"])
        assert deduped >= len(DESIGNS) * (REPEAT - 1), (
            f"expected >= {len(DESIGNS)} deduped/cached jobs, got {deduped}"
        )
        for job in jobs:
            design = job["label"].split("@")[0]
            assert job["fingerprint"] == reference[design], (
                f"replicated fingerprint of {design} differs from the "
                f"direct run: {job['fingerprint']} != {reference[design]}"
            )
        replicas_used = {job["replica"] for job in jobs if job.get("replica")}
        assert len(replicas_used) >= 2, (
            f"4 distinct designs landed on one shard: {replicas_used}"
        )
        print(f"[smoke/replicas] {len(jobs)} submissions sharded across "
              f"{sorted(replicas_used)}, {deduped} deduped, all "
              "fingerprints match the direct run")

        loadgen = cli(
            "loadgen", "--url", url, "--board", BOARD,
            "--solver", SOLVER,
            *[arg for design in DESIGNS[:3] for arg in ("--design", design)],
            "--duration", "4", "--rate", "4", "--arrival", "bursty",
            "--duplicate-ratio", "0.6", "--seed", "3", "--json",
        )
        report = json.loads(loadgen.stdout)
        assert report["errors"] == 0, report
        assert report["completed"] > 0, report
        assert report["fingerprint_conflicts"] == 0, report
        assert report["deduped"] + report["cache_hits"] > 0, (
            "a 0.6-duplicate burst produced no dedupe/cache hits"
        )
        print(f"[smoke/replicas] loadgen burst ok: {report['completed']} "
              f"completed, {report['deduped'] + report['cache_hits']} "
              "answered without a duplicate solve, 0 errors")

        health = json.loads(
            cli("submit", "--url", url, "--health").stdout
        )
        assert health["role"] == "router", health
        details = health["details"]
        assert details["healthy_replicas"] == 2, details
        busy = [n for n, c in details["shard_counts"].items() if c > 0]
        assert len(busy) >= 2, (
            f"traffic never balanced across shards: {details['shard_counts']}"
        )
        assert health["counters"]["routed"] > 0, health["counters"]
        print(f"[smoke/replicas] shard counts {details['shard_counts']}, "
              f"warm {details['warm']}")

        cli("submit", "--url", url, "--shutdown")
        assert_clean_shutdown(server, url, "replicated tier")
        print("[smoke/replicas] clean fleet shutdown")
    finally:
        stop_server(server, "smoke/replicas", logs)


def main() -> int:
    server, url, logs = start_server(
        ["--max-batch", "4", "--max-wait-ms", "50"], PORT, "smoke"
    )
    try:
        print(f"[smoke] server is up at {url}")

        submit = cli(
            "submit", "--url", url, "--board", BOARD, "--solver", SOLVER,
            *[arg for design in DESIGNS for arg in ("--design", design)],
            "--repeat", str(REPEAT), "--json",
        )
        submitted = json.loads(submit.stdout)
        jobs = submitted["jobs"]
        assert len(jobs) == len(DESIGNS) * REPEAT, submitted
        assert submitted["num_failed"] == 0, submitted
        assert all(job["state"] == "done" for job in jobs), submitted
        deduped = sum(1 for job in jobs if job["deduped"] or job["cache_hit"])
        assert deduped >= len(DESIGNS) * (REPEAT - 1), (
            f"expected >= {len(DESIGNS)} deduped/cached jobs, got {deduped}"
        )
        print(f"[smoke] {len(jobs)} submissions ok, {deduped} answered "
              "without a duplicate solve")

        health = json.loads(cli("submit", "--url", url, "--health").stdout)
        batches = health["counters"]["batches"]
        assert 0 < batches < len(jobs), (
            f"expected coalescing into fewer than {len(jobs)} batches, "
            f"got {batches}"
        )
        print(f"[smoke] burst coalesced into {batches} engine batch(es)")

        reference = direct_reference()
        for job in jobs:
            design = job["label"].split("@")[0]
            assert job["fingerprint"] == reference[design], (
                f"served fingerprint of {design} differs from the direct "
                f"batch run: {job['fingerprint']} != {reference[design]}"
            )
        print(f"[smoke] all {len(jobs)} served fingerprints match the "
              "direct `repro batch` run")

        # Mixed exact/fast burst: fast jobs must carry a certified gap
        # within the contract, and re-submitted exact jobs must keep the
        # fingerprints of the first burst (fast mode is a separate cache
        # lane, never a silent substitute for an exact answer).
        mixed = cli(
            "submit", "--url", url, "--board", BOARD, "--solver", SOLVER,
            *[arg for design in DESIGNS for arg in ("--design", design)],
            "--fast", "--gap", "0.05", "--json",
        )
        fast_jobs = json.loads(mixed.stdout)["jobs"]
        assert all(job["state"] == "done" for job in fast_jobs), fast_jobs
        for job in fast_jobs:
            gap = job["gap"]
            assert isinstance(gap, (int, float)) and 0.0 <= gap <= 0.05, (
                f"fast job {job['label']} reported gap {gap!r}, expected a "
                "certified value within the 5% contract"
            )
        exact_again = cli(
            "submit", "--url", url, "--board", BOARD, "--solver", SOLVER,
            *[arg for design in DESIGNS for arg in ("--design", design)],
            "--json",
        )
        for job in json.loads(exact_again.stdout)["jobs"]:
            design = job["label"].split("@")[0]
            assert job["gap"] is None, (
                f"exact job {design} unexpectedly carries a gap: {job['gap']}"
            )
            assert job["fingerprint"] == reference[design], (
                f"exact fingerprint of {design} changed after the fast "
                f"burst: {job['fingerprint']} != {reference[design]}"
            )
        health = json.loads(cli("submit", "--url", url, "--health").stdout)
        assert health["counters"]["fast_jobs"] == len(DESIGNS), health["counters"]
        print(f"[smoke] mixed burst ok: {len(fast_jobs)} fast jobs within "
              "the gap contract, exact fingerprints unchanged")

        cli("submit", "--url", url, "--shutdown")
        assert_clean_shutdown(server, url, "server")
        print("[smoke] clean shutdown")

        replicated_phase(reference)
        print("[smoke] PASS")
        return 0
    except AssertionError as failure:
        print(f"[smoke] FAIL: {failure}", file=sys.stderr)
        return 1
    finally:
        stop_server(server, "smoke", logs)


if __name__ == "__main__":
    sys.exit(main())
